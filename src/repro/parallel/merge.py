"""Merging shard results: outcomes, aggregated stats, the run report.

:func:`run_shards` is the orchestration entry the engine's executor
calls: partition → clip (pruning shards with an empty relation before
any dispatch) → deal to the persistent pool → yield
:class:`ShardOutcome` objects in completion order.  The engine wraps the
outcome stream into its ordinary :class:`ResultCursor` — ``limit``,
``decode`` and ``close`` (which stops dealing and drains the pool) all
keep their serial semantics — and aggregates per-shard
``ResolutionStats`` with :meth:`ResolutionStats.merge`.

The :class:`ParallelReport` filled along the way is the subsystem's
instrumentation: per-shard compute seconds (measured inside the worker),
per-worker busy time, rows shipped vs. reference hits, pruned shard
count, and the **makespan** — partition time + parent-side coordination
+ the busiest worker — which is the wall time a host with ≥ ``workers``
free cores sees, and what ``repro explain`` and the parallel benchmark
render.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.resolution import ResolutionStats
from repro.obs import tracing as _tracing
from repro.obs.metrics import REGISTRY as _METRICS
from repro.parallel.partition import (
    Shard,
    clip_relation,
    clip_slice,
    partition_shards,
)
from repro.parallel.scheduler import (
    PendingShard,
    QueryTimeout,
    WorkerError,
    get_pool,
    run_job_in_parent,
)
from repro.parallel.shm import SlicePlan, shm_enabled, shm_min_bytes
from repro.relational.query import Database, JoinQuery

Row = Tuple[int, ...]


@dataclass
class ShardOutcome:
    """One executed shard: its rows, stats and scheduling facts."""

    shard: Shard
    shard_id: int
    rows: List[Row]
    stats: ResolutionStats
    compute_seconds: float
    worker_id: int
    input_rows: int


@dataclass
class ParallelReport:
    """Aggregated instrumentation of one shard-parallel run."""

    workers: int
    num_shards: int
    split_attrs: Tuple[str, ...]
    pruned_shards: int = 0
    executed_shards: int = 0
    output_rows: int = 0
    #: Rows shipped by value the first time their content left the
    #: parent.  Re-ships of content already resident on another worker
    #: (work stealing) are tallied apart in :attr:`rows_reshipped`.
    rows_shipped: int = 0
    #: Actual wire bytes of every cold payload — pickled blob lengths
    #: plus the (tiny) pickled segment refs, measured at ship time.
    bytes_shipped: int = 0
    #: The nominal figure the wire volume used to be reported as
    #: (8 bytes per column value), kept for cross-run comparability.
    bytes_nominal: int = 0
    #: Steal-induced duplicate ships: rows pickled to a worker although
    #: another worker already cached the same content.
    rows_reshipped: int = 0
    #: Shards dealt to a worker holding none of their relations while
    #: another worker held some (the work-stealing last resort).
    shards_stolen: int = 0
    ref_hits: int = 0
    refs_total: int = 0
    #: Shared-memory data plane: payloads shipped as segment refs,
    #: refs that fell back to pickle blobs (creation failure), segments
    #: newly attached worker-side with their mapped bytes and attach
    #: wall time.
    shm_ships: int = 0
    shm_fallbacks: int = 0
    shm_attaches: int = 0
    shm_attached_bytes: int = 0
    shm_attach_seconds: float = 0.0
    #: Fault-recovery accounting: workers respawned after death/hang,
    #: shards re-dealt after losing their worker, shards quarantined to
    #: serial in-parent execution (repeat failures or a deterministic
    #: worker-side error), shards run serially because the pool
    #: degraded (spawn failure / crash budget exceeded), and shm
    #: exports that failed by *raising* (degraded to blob ships).
    worker_respawns: int = 0
    shard_retries: int = 0
    shards_quarantined: int = 0
    serial_fallback_shards: int = 0
    shm_export_errors: int = 0
    #: Pipe dispatches attempted vs. answered clean.  Tallied apart so
    #: quarantine re-runs (in-parent, no pipe) inflate neither: in a
    #: fault-free run ``attempts == successes == executed shards dealt
    #: to workers``, and the gap under faults is exactly the failed
    #: worker attempts.
    dispatch_attempts: int = 0
    dispatch_successes: int = 0
    #: The run aborted on its deadline (the report is partial).
    timed_out: bool = False
    partition_seconds: float = 0.0
    #: Wall time of the deal/collect loop, parent side.
    loop_seconds: float = 0.0
    worker_busy: Dict[int, float] = field(default_factory=dict)
    #: (shard description, worker id, output rows, compute seconds),
    #: completion order — the EXPLAIN shard tree's rows.
    shard_details: List[Tuple[str, int, int, float]] = field(
        default_factory=list
    )

    def record(self, outcome: ShardOutcome) -> None:
        self.executed_shards += 1
        self.output_rows += len(outcome.rows)
        self.worker_busy[outcome.worker_id] = (
            self.worker_busy.get(outcome.worker_id, 0.0)
            + outcome.compute_seconds
        )
        self.shard_details.append(
            (
                outcome.shard.describe(),
                outcome.worker_id,
                len(outcome.rows),
                outcome.compute_seconds,
            )
        )

    @property
    def total_compute_seconds(self) -> float:
        """Σ per-shard compute — the run's aggregate worker CPU time."""
        return sum(self.worker_busy.values())

    @property
    def max_worker_seconds(self) -> float:
        """The busiest worker's total compute: the parallel critical path."""
        return max(self.worker_busy.values(), default=0.0)

    @property
    def coordination_seconds(self) -> float:
        """Parent-side work during the loop: dispatch pickling, receive,
        merge.  Measured as loop wall minus worker compute; on a host
        with enough free cores worker compute overlaps the loop and this
        collapses toward the true (small) coordination cost, hence the
        clamp at zero."""
        return max(0.0, self.loop_seconds - self.total_compute_seconds)

    @property
    def makespan_seconds(self) -> float:
        """Critical-path wall time with ≥ ``workers`` free cores:
        partition + serial coordination + the busiest worker."""
        return (
            self.partition_seconds
            + self.coordination_seconds
            + self.max_worker_seconds
        )

    @property
    def had_faults(self) -> bool:
        """Whether any recovery machinery fired during this run."""
        return bool(
            self.worker_respawns
            or self.shard_retries
            or self.shards_quarantined
            or self.serial_fallback_shards
            or self.shm_export_errors
            or self.timed_out
        )

    @property
    def balance(self) -> float:
        """Busiest-worker share of mean load (1.0 = perfectly level)."""
        if not self.worker_busy:
            return 1.0
        mean = self.total_compute_seconds / self.workers
        if mean == 0.0:
            return 1.0
        return self.max_worker_seconds / mean

    def summary(self) -> str:
        hit = (
            f"{self.ref_hits}/{self.refs_total}"
            if self.refs_total
            else "0/0"
        )
        shm = (
            f" shm={self.shm_ships} refs"
            f"/{self.shm_attached_bytes}B attached"
            if self.shm_ships
            else ""
        )
        faults = (
            f" faults: {self.worker_respawns} respawns, "
            f"{self.shard_retries} retries, "
            f"{self.shards_quarantined + self.serial_fallback_shards} "
            f"serial"
            if self.had_faults
            else ""
        )
        timed = " TIMED OUT" if self.timed_out else ""
        return (
            f"workers={self.workers} shards={self.executed_shards}"
            f"+{self.pruned_shards} pruned "
            f"shipped={self.rows_shipped} rows (ref hits {hit}){shm} "
            f"makespan={self.makespan_seconds:.4f}s "
            f"(busiest worker {self.max_worker_seconds:.4f}s)"
            f"{faults}{timed}"
        )


class _JobCache:
    """Content-keyed LRU over prepared (partitioned + clipped) jobs.

    Partitioning probes and clipping slices are pure functions of the
    relations' content and the plan's shard parameters, and relations
    are immutable — so a served workload re-running the same parallel
    query skips the whole prepare step: same shards, same clipped
    relation objects (hence the same worker cache keys: repeats still
    ship no rows), near-zero partition time in the report.
    """

    def __init__(self, capacity: int = 32):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Tuple]" = OrderedDict()

    def get(self, key: Tuple):
        hit = self._entries.get(key)
        if hit is not None:
            self._entries.move_to_end(key)
        return hit

    def put(self, key: Tuple, value: Tuple) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


_JOB_CACHE = _JobCache()


def clear_job_cache() -> None:
    """Drop every memoized shard partition (tests / memory pressure)."""
    _JOB_CACHE.clear()


def prepare_jobs(
    query: JoinQuery, db: Database, plan
) -> Tuple[Tuple[Shard, ...], List[PendingShard], int]:
    """Partition and clip: the dispatchable jobs plus the pruned count.

    Memoized on content — query signature, relation fingerprints, the
    plan's shard parameters, and the shm configuration (slice payloads
    exist only on the shm path) — so repeated executions reuse the
    clipped relations (zero-copy, including their memoized views).

    Where a shard's clip of a large-enough relation starts from the
    schema-leading attribute (:func:`~repro.parallel.partition.
    clip_slice`), the job carries a :class:`~repro.parallel.shm.
    SlicePlan` — a bisected canonical-row range plus any residual
    value-range filters — instead of a materialized copy: every shard of
    every worker then reads the same shared base segment, and the parent
    never builds the clipped rows at all.
    """
    use_shm = shm_enabled()
    min_bytes = shm_min_bytes() if use_shm else 0
    key = (
        tuple((a.name, a.attrs) for a in query.atoms),
        db.stats_fingerprint(),
        plan.num_shards,
        tuple(plan.split_attrs),
        (use_shm, min_bytes),
    )
    cached = _JOB_CACHE.get(key)
    if cached is not None:
        return cached
    shards = partition_shards(
        query, db, plan.num_shards, plan.split_attrs or None
    )
    depth = db.domain.depth
    jobs: List[PendingShard] = []
    pruned = 0
    for shard_id, shard in enumerate(shards):
        relations = []
        weight = 0
        for atom in query.atoms:
            rel = db[atom.name]
            attr_map = dict(zip(atom.attrs, rel.attrs))
            rng = None
            if use_shm and rel.nominal_bytes() >= min_bytes:
                rng = clip_slice(rel, shard, depth, attr_map)
            if rng is not None:
                lo, hi, rest = rng
                if hi <= lo:
                    relations = None
                    break
                relations.append(
                    (
                        atom.name,
                        ("shm-slice", rel.cache_key(), lo, hi, rest),
                        SlicePlan(rel, lo, hi, rest),
                    )
                )
                weight += hi - lo
                continue
            piece = clip_relation(rel, shard, depth, attr_map)
            if len(piece) == 0:
                relations = None
                break
            relations.append((atom.name, piece.cache_key(), piece))
            weight += len(piece)
        if relations is None:
            pruned += 1
            continue
        jobs.append(
            PendingShard(
                shard_id=shard_id,
                shard=shard,
                relations=tuple(relations),
                weight=weight,
            )
        )
    prepared = (shards, jobs, pruned)
    _JOB_CACHE.put(key, prepared)
    return prepared


#: Default per-query deadline, milliseconds; unset/0 = no deadline.
QUERY_TIMEOUT_ENV = "REPRO_QUERY_TIMEOUT_MS"


def _env_timeout_ms() -> Optional[int]:
    raw = os.environ.get(QUERY_TIMEOUT_ENV)
    if raw is None:
        return None
    try:
        ms = int(raw)
    except ValueError:
        return None
    return ms if ms > 0 else None


def run_shards(
    query: JoinQuery,
    db: Database,
    plan,
    limit: Optional[int] = None,
    timeout_ms: Optional[int] = None,
) -> Tuple[Iterator[ShardOutcome], ParallelReport]:
    """Execute a planned parallel join; outcomes stream as shards finish.

    Returns ``(outcomes, report)``.  The outcome iterator deals shards
    to the persistent pool lazily — closing it early (cursor ``limit``)
    stops dealing and drains in-flight work.  ``limit`` is forwarded to
    every shard as a per-shard cap (no shard can contribute more than
    ``limit`` rows; the merged cursor enforces the global cut-off).

    ``timeout_ms`` (default: ``REPRO_QUERY_TIMEOUT_MS``; ``None``/≤0 =
    unbounded) arms a per-query deadline, counted from first
    consumption: past it the run aborts with
    :class:`~repro.parallel.scheduler.QueryTimeout` carrying this
    (partial) report, and any hung workers are killed and respawned.

    A pool that cannot be spawned at all degrades the whole run to
    serial in-process execution — ``workers=N`` is a performance hint,
    never a correctness risk.
    """
    tracer = _tracing.current_tracer()
    t0 = time.perf_counter()
    with _tracing.span("parallel.partition", shards=plan.num_shards) as sp:
        shards, jobs, pruned = prepare_jobs(query, db, plan)
        if sp is not None:
            sp.attrs.update(jobs=len(jobs), pruned=pruned)
    report = ParallelReport(
        workers=plan.workers,
        num_shards=len(shards),
        split_attrs=tuple(plan.split_attrs),
        pruned_shards=pruned,
    )
    report.partition_seconds = time.perf_counter() - t0

    if not jobs:
        _publish_report(report)
        return iter(()), report

    by_id = {job.shard_id: job for job in jobs}
    if timeout_ms is None:
        timeout_ms = _env_timeout_ms()
    if timeout_ms is not None and timeout_ms <= 0:
        timeout_ms = None
    # Capture the dispatch span's parent *now*, while the caller's span
    # stack still reflects this query — the outcome generator below may
    # run after the ambient context has moved on.
    dispatch_parent = tracer.context()[1] if tracer is not None else None

    def emit(result, worker_id: int, job: PendingShard) -> ShardOutcome:
        if tracer is not None and result.spans:
            tracer.adopt(result.spans)
        outcome = ShardOutcome(
            shard=by_id[result.shard_id].shard,
            shard_id=result.shard_id,
            rows=result.rows,
            stats=result.stats,
            compute_seconds=result.compute_seconds,
            worker_id=worker_id,
            input_rows=job.weight,
        )
        report.record(outcome)
        return outcome

    def outcomes() -> Iterator[ShardOutcome]:
        loop_start = time.perf_counter()
        deadline = (
            time.monotonic() + timeout_ms / 1000.0
            if timeout_ms is not None
            else None
        )
        dispatch_span = None
        trace_ctx = None
        if tracer is not None:
            dispatch_span = tracer.start(
                "parallel.dispatch",
                parent_id=dispatch_parent,
                workers=plan.workers,
                shards=len(jobs),
            )
            trace_ctx = (tracer.trace_id, dispatch_span.span_id)
        try:
            # Pool acquisition happens at first consumption,
            # synchronously with the dealer reserving it — get_pool
            # never returns a pool another open cursor is mid-run on,
            # so interleaved parallel cursors cannot cross-wire each
            # other's pipe replies.  A pool that cannot be spawned at
            # all (fork/pipe exhaustion) degrades the run to serial
            # in-process execution of every shard instead of failing:
            # workers=N is a performance hint, never a correctness
            # risk.
            try:
                pool = get_pool(plan.workers)
            except (OSError, WorkerError):
                if tracer is not None:
                    tracer.finish(
                        tracer.start(
                            "parallel.degraded",
                            reason="pool spawn failed",
                        )
                    )
                for job in sorted(jobs, key=lambda j: -j.weight):
                    if (
                        deadline is not None
                        and time.monotonic() >= deadline
                    ):
                        report.timed_out = True
                        raise QueryTimeout(
                            "serial-fallback query exceeded its "
                            "deadline",
                            report=report,
                        )
                    result = run_job_in_parent(
                        job, query.atoms, plan.backend, plan.index_kind,
                        plan.gao, limit, trace_ctx,
                    )
                    report.serial_fallback_shards += 1
                    yield emit(result, -1, job)
                return
            dealer = pool.run_shards(
                jobs,
                atoms=query.atoms,
                backend=plan.backend,
                index_kind=plan.index_kind,
                gao=plan.gao,
                limit=limit,
                report=report,
                trace=trace_ctx,
                deadline=deadline,
            )
            try:
                for result, worker_id, job in dealer:
                    yield emit(result, worker_id, job)
            finally:
                # Explicit close: abandoning the merged cursor
                # mid-stream must deterministically stop dealing and
                # drain in-flight shards, not wait for garbage
                # collection.
                dealer.close()
        finally:
            report.loop_seconds = time.perf_counter() - loop_start
            if tracer is not None:
                tracer.finish(
                    dispatch_span,
                    executed=report.executed_shards,
                    rows=report.output_rows,
                )
            _publish_report(report)

    return outcomes(), report


def _publish_report(report: ParallelReport) -> None:
    """Fold one run's report into the process-wide metrics registry."""
    if not _METRICS.enabled:
        return
    _METRICS.inc_many(
        {
            "parallel.runs": 1,
            "parallel.shards.executed": report.executed_shards,
            "parallel.shards.pruned": report.pruned_shards,
            "parallel.shards.stolen": report.shards_stolen,
            "parallel.ship.rows": report.rows_shipped,
            "parallel.ship.rows_reshipped": report.rows_reshipped,
            "parallel.ship.bytes": report.bytes_shipped,
            "parallel.ship.bytes_nominal": report.bytes_nominal,
            "parallel.ship.ref_hits": report.ref_hits,
            "parallel.ship.refs_total": report.refs_total,
            "parallel.shm.ships": report.shm_ships,
            "parallel.shm.fallbacks": report.shm_fallbacks,
            "parallel.shm.attaches": report.shm_attaches,
            "parallel.shm.attached_bytes": report.shm_attached_bytes,
            "parallel.dispatch.attempts": report.dispatch_attempts,
            "parallel.dispatch.successes": report.dispatch_successes,
            "parallel.faults.respawns": report.worker_respawns,
            "parallel.faults.retries": report.shard_retries,
            "parallel.faults.quarantined": report.shards_quarantined,
            "parallel.faults.serial_fallback": (
                report.serial_fallback_shards
            ),
            "parallel.faults.shm_export_errors": report.shm_export_errors,
            "parallel.faults.timeouts": 1 if report.timed_out else 0,
        }
    )
    if report.shm_attach_seconds > 0.0:
        _METRICS.observe(
            "parallel.shm.attach_seconds", report.shm_attach_seconds
        )
    _METRICS.observe("parallel.makespan_seconds", report.makespan_seconds)
