"""The unified execution engine: one entry point over every join backend.

``execute(query, db, algorithm="auto")`` plans (or honors a forced
backend), dispatches over the backend registry, and returns an
:class:`ExecutionResult` — the same shape as
:class:`repro.joins.tetris_join.JoinResult` (``tuples`` / ``variables`` /
``stats`` / ``gao``) plus the :class:`~repro.engine.planner.Plan` and the
measured wall time, so EXPLAIN can show predicted vs. actual.

On top of the materialized path sits the **streaming cursor API**:
``execute_cursor(...)`` returns a :class:`ResultCursor` that pulls rows
lazily from the backend's streaming runner (all six built-ins have one),
``execute(..., limit=k)`` terminates early after materializing at most
O(k) output rows, and ``decode=`` threads a
:class:`~repro.relational.io.ValueDictionary` so results come back as
the original values instead of dictionary codes.

The registry wraps all six existing join implementations; new backends
register with :func:`register_backend` and become visible to forced
dispatch immediately (the cost model prices only the built-ins it knows).
A backend registered without a ``streamer`` still works with cursors and
limits — its materialized output is truncated after the fact.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.resolution import ResolutionStats
from repro.engine.planner import Plan, plan_query
from repro.obs import flight as _flight
from repro.obs import profiler as _profiler
from repro.obs import slowlog as _slowlog
from repro.obs import tracing as _tracing
from repro.obs.metrics import REGISTRY as _METRICS
from repro.relational.query import Database, JoinQuery

Row = Tuple[int, ...]

#: A backend runner: (query, db, plan) → (tuples, stats, gao).
BackendRunner = Callable[
    [JoinQuery, Database, Plan],
    Tuple[List[Row], ResolutionStats, Tuple[str, ...]],
]

#: A streaming runner: (query, db, plan, limit) → (row iterator, stats,
#: gao).  ``limit`` is a materialization hint (Tetris uses it to cap the
#: engine's enumeration); the cursor enforces the exact cut-off.
StreamRunner = Callable[
    [JoinQuery, Database, Plan, Optional[int]],
    Tuple[Iterator[Row], ResolutionStats, Tuple[str, ...]],
]


@dataclass(frozen=True)
class BackendSpec:
    """A registered execution backend."""

    name: str
    runner: BackendRunner
    description: str
    requires_acyclic: bool = False
    streamer: Optional[StreamRunner] = None


class ResultCursor:
    """A lazily-evaluated join result: rows stream, nothing pre-sorts.

    Iterating pulls rows straight off the backend's generator pipeline;
    ``fetchmany``/``fetchall`` batch the pulls.  An optional ``limit``
    caps the row count (early termination: the underlying pipeline is
    abandoned once the cap is hit) and an optional ``decode`` dictionary
    maps each row's codes back to original values on the way out.

    ``stats`` (and Tetris resolution counters in particular) are filled
    in *during* iteration — read them after consuming the cursor.
    """

    def __init__(
        self,
        rows: Iterator[Row],
        variables: Tuple[str, ...],
        backend: str,
        plan: Plan,
        stats: ResolutionStats,
        gao: Tuple[str, ...],
        limit: Optional[int] = None,
        decode=None,
    ):
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        self.variables = variables
        self.backend = backend
        self.plan = plan
        self.stats = stats
        self.gao = gao
        self.limit = limit
        #: Filled by the shard-parallel path: the run's ParallelReport.
        self.parallel = None
        #: The cursor's own Tracer when it opened one (cursor path with
        #: tracing enabled and no ambient tracer); read after close().
        self.trace = None
        #: Invoked once on close — how a cursor-owned trace's root span
        #: gets its end time at exhaustion or abandonment.
        self.on_close: Optional[Callable[[], None]] = None
        self.rows_produced = 0
        self._source = rows  # the backend pipeline itself, for close()
        if limit is not None:
            rows = itertools.islice(rows, limit)
        if decode is not None:
            rows = decode.decode_rows(rows)  # lazy per-row decoding
        self._rows = rows
        self._closed = False

    def __iter__(self) -> "ResultCursor":
        return self

    def __next__(self):
        if self._closed:
            raise StopIteration
        try:
            row = next(self._rows)
        except StopIteration:
            # The stream ended — by exhaustion or by the limit's islice
            # cutting it off.  Close the underlying pipeline either way:
            # a limit cut-off leaves it suspended (holding hash tables,
            # and for parallel runs the worker pool's active slot) with
            # nothing left to pull it.
            self.close()
            raise
        self.rows_produced += 1
        return row

    def fetchmany(self, k: int) -> List[Row]:
        """Up to ``k`` more rows (fewer at exhaustion)."""
        return list(itertools.islice(self, k))

    def fetchall(self) -> List[Row]:
        """Every remaining row, materialized."""
        return list(self)

    def close(self) -> None:
        """Abandon the underlying pipeline; further iteration stops.

        Closes the backend generator itself, not the islice/decode
        wrappers around it, so suspended pipeline frames (and their
        hash tables) are released immediately.
        """
        self._closed = True
        close = getattr(self._source, "close", None)
        if close is not None:
            close()
        callback, self.on_close = self.on_close, None
        if callback is not None:
            callback()

    def __enter__(self) -> "ResultCursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class ExecutionResult:
    """Join output plus the plan that produced it — JoinResult-shaped.

    With ``limit`` set, ``tuples`` holds the first ≤ limit rows the
    backend produced (sorted among themselves; *which* rows depends on
    the backend's enumeration order).  With ``decode`` threaded through
    :func:`execute`, the attached dictionary decodes rows lazily via
    :meth:`decoded_rows` — no second full copy of the result is held.
    """

    tuples: List[Row]
    variables: Tuple[str, ...]
    stats: ResolutionStats
    gao: Tuple[str, ...]
    backend: str
    plan: Plan
    elapsed: float
    limit: Optional[int] = None
    decode: Optional[object] = field(default=None, repr=False)
    #: The shard-parallel run's ParallelReport; None for serial plans.
    parallel: Optional[object] = field(default=None, repr=False)
    #: This query's metrics delta (a MetricsSnapshot), when the registry
    #: is enabled — what EXPLAIN's consolidated metrics block renders.
    metrics: Optional[object] = field(default=None, repr=False)
    #: The query's Tracer when it ran traced; None otherwise.
    trace: Optional[object] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def decoded_rows(self) -> Iterator[Tuple]:
        """Lazily decode ``tuples`` through the attached dictionary."""
        if self.decode is None:
            raise ValueError(
                "no dictionary attached; pass decode= to execute()"
            )
        return self.decode.decode_rows(self.tuples)


# -- the built-in backends -----------------------------------------------------


def _run_tetris(variant: str) -> BackendRunner:
    def runner(query, db, plan):
        from repro.joins.tetris_join import join_tetris

        result = join_tetris(
            query, db, variant=variant,
            index_kind=plan.index_kind, gao=plan.gao,
        )
        return result.tuples, result.stats, result.gao

    return runner


def _stream_tetris(variant: str) -> StreamRunner:
    def streamer(query, db, plan, limit):
        from repro.joins.tetris_join import iter_tetris

        stats = ResolutionStats()
        rows = iter_tetris(
            query, db, variant=variant, index_kind=plan.index_kind,
            gao=plan.gao, stats=stats, max_outputs=limit,
        )
        return rows, stats, plan.gao

    return streamer


def _run_leapfrog(query, db, plan):
    from repro.joins.leapfrog import join_leapfrog

    return join_leapfrog(query, db, gao=plan.gao), ResolutionStats(), plan.gao


def _stream_leapfrog(query, db, plan, limit):
    from repro.joins.leapfrog import iter_leapfrog

    rows = iter_leapfrog(query, db, gao=plan.gao)
    return rows, ResolutionStats(), plan.gao


def _run_yannakakis(query, db, plan):
    from repro.joins.yannakakis import join_yannakakis

    return join_yannakakis(query, db), ResolutionStats(), plan.gao


def _stream_yannakakis(query, db, plan, limit):
    from repro.joins.yannakakis import iter_yannakakis

    return iter_yannakakis(query, db), ResolutionStats(), plan.gao


def _run_hash(query, db, plan):
    from repro.joins.hashjoin import join_hash

    return join_hash(query, db), ResolutionStats(), plan.gao


def _stream_hash(query, db, plan, limit):
    from repro.joins.hashjoin import iter_hash

    return iter_hash(query, db), ResolutionStats(), plan.gao


def _run_nested_loop(query, db, plan):
    from repro.joins.nested_loop import join_nested_loop

    return join_nested_loop(query, db), ResolutionStats(), plan.gao


def _stream_nested_loop(query, db, plan, limit):
    from repro.joins.nested_loop import iter_nested_loop

    return iter_nested_loop(query, db), ResolutionStats(), plan.gao


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> None:
    """Add (or replace) a backend in the dispatch registry."""
    _REGISTRY[spec.name] = spec


def registered_backends() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


for _spec in (
    BackendSpec(
        "tetris-preloaded", _run_tetris("preloaded"),
        "Tetris, gap boxes preloaded (worst-case-optimal, Thm D.8/D.9)",
        streamer=_stream_tetris("preloaded"),
    ),
    BackendSpec(
        "tetris-reloaded", _run_tetris("reloaded"),
        "Tetris, gap boxes on demand (certificate-based, Thm 4.7/4.9)",
        streamer=_stream_tetris("reloaded"),
    ),
    BackendSpec(
        "leapfrog", _run_leapfrog,
        "generic worst-case-optimal join (Leapfrog/NPRR, AGM bound)",
        streamer=_stream_leapfrog,
    ),
    BackendSpec(
        "yannakakis", _run_yannakakis,
        "Yannakakis semijoin reduction (α-acyclic only, Õ(N + Z))",
        requires_acyclic=True,
        streamer=_stream_yannakakis,
    ),
    BackendSpec(
        "hash", _run_hash,
        "left-deep binary hash-join plan (connectivity-aware "
        "size-ascending order)",
        streamer=_stream_hash,
    ),
    BackendSpec(
        "nested-loop", _run_nested_loop,
        "block nested loops (baseline floor)",
        streamer=_stream_nested_loop,
    ),
):
    register_backend(_spec)


def _resolve_plan(
    query: JoinQuery,
    db: Database,
    plan: Optional[Plan],
    algorithm: str,
    index_kind: Optional[str],
    gao: Optional[Sequence[str]],
    probe_certificate: bool,
    use_cache: bool,
    workers: Optional[int],
    plan_kwargs: dict,
) -> Tuple[Plan, BackendSpec]:
    if plan is None:
        plan = plan_query(
            query, db, algorithm=algorithm, index_kind=index_kind,
            gao=gao, probe_certificate=probe_certificate,
            use_cache=use_cache, workers=workers, **plan_kwargs,
        )
    spec = _REGISTRY.get(plan.backend)
    if spec is None:
        raise ValueError(f"no registered backend named {plan.backend!r}")
    return plan, spec


def _parallel_cursor(
    query: JoinQuery,
    db: Database,
    plan: Plan,
    limit: Optional[int],
    decode,
    timeout_ms: Optional[int] = None,
) -> ResultCursor:
    """The merged streaming cursor over a shard-parallel run.

    Shards are dealt to the persistent worker pool lazily as the cursor
    is consumed; per-shard ``ResolutionStats`` are absorbed into the
    cursor's aggregate as each shard completes (shards are disjoint in
    output space, so rows concatenate without deduplication).  Closing
    the cursor early — the ``limit`` path — stops dealing and drains
    in-flight shards.
    """
    from repro.parallel.merge import run_shards

    # Capture the tracer by reference: the merge generator below may be
    # pulled after the ambient context has been uninstalled.
    tracer = _tracing.current_tracer()
    outcomes, report = run_shards(query, db, plan, limit, timeout_ms)
    stats = ResolutionStats()

    def rows() -> Iterator[Row]:
        merge_span = (
            tracer.start("merge", shards=report.num_shards)
            if tracer is not None
            else None
        )
        produced = 0
        try:
            for outcome in outcomes:
                stats.absorb(outcome.stats)
                produced += len(outcome.rows)
                yield from outcome.rows
        finally:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
            if tracer is not None:
                tracer.finish(merge_span, rows=produced)

    cursor = ResultCursor(
        rows(), variables=query.variables, backend=plan.backend,
        plan=plan, stats=stats, gao=plan.gao, limit=limit, decode=decode,
    )
    cursor.parallel = report
    return cursor


def execute_cursor(
    query: JoinQuery,
    db: Database,
    algorithm: str = "auto",
    index_kind: Optional[str] = None,
    gao: Optional[Sequence[str]] = None,
    plan: Optional[Plan] = None,
    limit: Optional[int] = None,
    decode=None,
    probe_certificate: bool = False,
    use_cache: bool = True,
    workers: Optional[int] = None,
    timeout_ms: Optional[int] = None,
    **plan_kwargs,
) -> ResultCursor:
    """Plan a join and return a lazy :class:`ResultCursor` over its rows.

    Rows stream in the backend's natural enumeration order (unsorted);
    consuming a prefix does only the work that prefix needs.  ``limit``
    caps the row count, ``decode`` yields dictionary-decoded rows.
    Aggregates should consume cursors — no intermediate result set is
    materialized on the way.  With ``workers=N`` (and a plan that went
    parallel) rows stream shard by shard off the worker pool instead.

    ``timeout_ms`` (default ``REPRO_QUERY_TIMEOUT_MS``) deadlines a
    *parallel* run: past it, consumption raises
    :class:`~repro.parallel.QueryTimeout` (hung workers are killed and
    respawned; the exception carries the partial parallel report).
    Serial plans ignore it — single-process backends have no supervisor
    to interrupt them.
    """
    # A directly-opened cursor under REPRO_TRACE gets its own tracer
    # (ambient only while planning — the caller drives consumption);
    # inside execute() the ambient tracer is already installed and the
    # cursor's spans nest under the query's.
    tracer = _tracing.current_tracer()
    owns_tracer = tracer is None and _tracing.enabled()
    if owns_tracer:
        tracer = _tracing.Tracer()
    with _tracing.use(tracer):
        qspan = (
            tracer.start("query", kind="cursor", algorithm=algorithm)
            if owns_tracer
            else None
        )
        plan, spec = _resolve_plan(
            query, db, plan, algorithm, index_kind, gao,
            probe_certificate, use_cache, workers, plan_kwargs,
        )
        if plan.num_shards > 1:
            cursor = _parallel_cursor(
                query, db, plan, limit, decode, timeout_ms
            )
        else:
            if spec.streamer is not None:
                rows, stats, ran_gao = spec.streamer(query, db, plan, limit)
            else:
                tuples, stats, ran_gao = spec.runner(query, db, plan)
                rows = iter(tuples)
            cursor = ResultCursor(
                rows, variables=query.variables, backend=plan.backend,
                plan=plan, stats=stats, gao=ran_gao, limit=limit,
                decode=decode,
            )
    if owns_tracer:
        cursor.trace = tracer
        cursor.on_close = lambda: tracer.finish(qspan)
    return cursor


def execute(
    query: JoinQuery,
    db: Database,
    algorithm: str = "auto",
    index_kind: Optional[str] = None,
    gao: Optional[Sequence[str]] = None,
    plan: Optional[Plan] = None,
    limit: Optional[int] = None,
    decode=None,
    probe_certificate: bool = False,
    use_cache: bool = True,
    workers: Optional[int] = None,
    timeout_ms: Optional[int] = None,
    **plan_kwargs,
) -> ExecutionResult:
    """Plan (unless a plan is supplied) and run a join query.

    The single entry point the CLI and benchmarks dispatch through;
    ``algorithm="auto"`` selects the cost-optimal backend, any registered
    backend name forces it.  ``limit=k`` terminates early through the
    backend's streaming runner, materializing at most O(k) output rows;
    ``decode=dictionary`` attaches a
    :class:`~repro.relational.io.ValueDictionary` so callers can read
    ``result.decoded_rows()`` lazily.

    ``workers=N`` offers the planner a shard-parallel plan on N worker
    processes: under ``algorithm="auto"`` the cost model decides
    serial-vs-parallel; a forced backend plus ``workers`` always runs
    parallel.  Parallel output is bit-for-bit the serial output (shards
    partition the output space; the merged rows are re-sorted) — worker
    crashes and hangs are survived by the pool's supervision (respawn,
    retry, serial quarantine), so it stays bit-for-bit under faults too.
    ``timeout_ms`` (default ``REPRO_QUERY_TIMEOUT_MS``) deadlines a
    parallel run with :class:`~repro.parallel.QueryTimeout`; serial
    plans ignore it.

    Observability happens here, once per query: with tracing on (or the
    slow-query log armed) the whole run executes under a ``query`` span;
    with the metrics registry enabled the result carries the query's
    metrics delta.  Both checks are per-query flag reads — disabled,
    this function is the PR-6 code path.
    """
    tracer = _tracing.current_tracer()
    owns_tracer = tracer is None and (
        _tracing.enabled() or _slowlog.armed()
    )
    if owns_tracer:
        tracer = _tracing.Tracer()
    # Honor REPRO_PROFILE lazily: one env read per process, then a
    # global check — the disabled path stays bit-identical.
    _profiler.maybe_start()
    metrics_on = _METRICS.enabled
    before = _METRICS.snapshot() if metrics_on else None
    wall0 = time.perf_counter()
    with _tracing.use(tracer):
        qspan = (
            tracer.start("query", algorithm=algorithm)
            if tracer is not None
            else None
        )
        try:
            plan, spec = _resolve_plan(
                query, db, plan, algorithm, index_kind, gao,
                probe_certificate, use_cache, workers, plan_kwargs,
            )
            t0 = time.perf_counter()
            report = None
            espan = (
                tracer.start(
                    "execute", backend=plan.backend, workers=plan.workers
                )
                if tracer is not None
                else None
            )
            try:
                if plan.num_shards > 1 or limit is not None:
                    # Close once materialized: with a limit the
                    # underlying pipeline is abandoned mid-stream, and a
                    # parallel cursor must release its worker pool
                    # (draining in-flight shards) for the next run.
                    with execute_cursor(
                        query, db, plan=plan, limit=limit,
                        timeout_ms=timeout_ms,
                    ) as cursor:
                        tuples = sorted(cursor.fetchall())
                        stats, ran_gao = cursor.stats, cursor.gao
                        report = cursor.parallel
                else:
                    tuples, stats, ran_gao = spec.runner(query, db, plan)
                if espan is not None:
                    espan.attrs["rows"] = len(tuples)
            finally:
                if tracer is not None:
                    tracer.finish(espan)
            elapsed = time.perf_counter() - t0
            if qspan is not None:
                qspan.attrs["backend"] = plan.backend
        finally:
            if tracer is not None:
                tracer.finish(qspan)
    wall_s = time.perf_counter() - wall0
    stage_seconds: Dict[str, float] = {}
    if metrics_on:
        _METRICS.observe("query.latency", wall_s)
        _METRICS.observe(
            f"query.latency.backend.{plan.backend}", wall_s
        )
        if tracer is not None:
            # Span durations feed the per-stage latency histograms:
            # the name's bracket suffix (shard[3]) is stripped so all
            # shards of a stage share one distribution.
            for s in tracer.spans:
                base = s.name.split("[", 1)[0]
                _METRICS.observe(f"stage.{base}.seconds", s.duration)
                stage_seconds[base] = (
                    stage_seconds.get(base, 0.0) + s.duration
                )
        _METRICS.inc_many(
            {
                "engine.queries": 1,
                "engine.rows.returned": len(tuples),
                **stats.as_metrics(),
            }
        )
        delta = _METRICS.snapshot().since(before)
    else:
        delta = None
    result = ExecutionResult(
        tuples=tuples,
        variables=query.variables,
        stats=stats,
        gao=ran_gao,
        backend=plan.backend,
        plan=plan,
        elapsed=elapsed,
        limit=limit,
        decode=decode,
        parallel=report,
        metrics=delta,
        trace=tracer,
    )
    description = (
        f"{' ⋈ '.join(a.name for a in query.atoms)} "
        f"backend={plan.backend} workers={plan.workers} "
        f"rows={len(tuples)}"
    )
    flight_rec = (
        _flight.record_query(
            description, wall_s, result, delta, stage_seconds
        )
        if metrics_on
        else None
    )
    _slowlog.maybe_report(
        description,
        wall_s,
        tracer=tracer,
        metrics_delta=delta.nonzero() if delta is not None else None,
        flight=flight_rec,
    )
    return result
