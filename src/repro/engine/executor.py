"""The unified execution engine: one entry point over every join backend.

``execute(query, db, algorithm="auto")`` plans (or honors a forced
backend), dispatches over the backend registry, and returns an
:class:`ExecutionResult` — the same shape as
:class:`repro.joins.tetris_join.JoinResult` (``tuples`` / ``variables`` /
``stats`` / ``gao``) plus the :class:`~repro.engine.planner.Plan` and the
measured wall time, so EXPLAIN can show predicted vs. actual.

The registry wraps all six existing join implementations; new backends
register with :func:`register_backend` and become visible to forced
dispatch immediately (the cost model prices only the built-ins it knows).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.resolution import ResolutionStats
from repro.engine.planner import Plan, plan_query
from repro.relational.query import Database, JoinQuery

#: A backend runner: (query, db, plan) → (tuples, stats, gao).
BackendRunner = Callable[
    [JoinQuery, Database, Plan],
    Tuple[List[Tuple[int, ...]], ResolutionStats, Tuple[str, ...]],
]


@dataclass(frozen=True)
class BackendSpec:
    """A registered execution backend."""

    name: str
    runner: BackendRunner
    description: str
    requires_acyclic: bool = False


@dataclass
class ExecutionResult:
    """Join output plus the plan that produced it — JoinResult-shaped."""

    tuples: List[Tuple[int, ...]]
    variables: Tuple[str, ...]
    stats: ResolutionStats
    gao: Tuple[str, ...]
    backend: str
    plan: Plan
    elapsed: float

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)


# -- the built-in backends -----------------------------------------------------


def _run_tetris(variant: str) -> BackendRunner:
    def runner(query, db, plan):
        from repro.joins.tetris_join import join_tetris

        result = join_tetris(
            query, db, variant=variant,
            index_kind=plan.index_kind, gao=plan.gao,
        )
        return result.tuples, result.stats, result.gao

    return runner


def _run_leapfrog(query, db, plan):
    from repro.joins.leapfrog import join_leapfrog

    return join_leapfrog(query, db, gao=plan.gao), ResolutionStats(), plan.gao


def _run_yannakakis(query, db, plan):
    from repro.joins.yannakakis import join_yannakakis

    return join_yannakakis(query, db), ResolutionStats(), plan.gao


def _run_hash(query, db, plan):
    from repro.joins.hashjoin import join_hash

    return join_hash(query, db), ResolutionStats(), plan.gao


def _run_nested_loop(query, db, plan):
    from repro.joins.nested_loop import join_nested_loop

    return join_nested_loop(query, db), ResolutionStats(), plan.gao


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> None:
    """Add (or replace) a backend in the dispatch registry."""
    _REGISTRY[spec.name] = spec


def registered_backends() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


for _spec in (
    BackendSpec(
        "tetris-preloaded", _run_tetris("preloaded"),
        "Tetris, gap boxes preloaded (worst-case-optimal, Thm D.8/D.9)",
    ),
    BackendSpec(
        "tetris-reloaded", _run_tetris("reloaded"),
        "Tetris, gap boxes on demand (certificate-based, Thm 4.7/4.9)",
    ),
    BackendSpec(
        "leapfrog", _run_leapfrog,
        "generic worst-case-optimal join (Leapfrog/NPRR, AGM bound)",
    ),
    BackendSpec(
        "yannakakis", _run_yannakakis,
        "Yannakakis semijoin reduction (α-acyclic only, Õ(N + Z))",
        requires_acyclic=True,
    ),
    BackendSpec(
        "hash", _run_hash,
        "left-deep binary hash-join plan (size-ascending order)",
    ),
    BackendSpec(
        "nested-loop", _run_nested_loop,
        "block nested loops (baseline floor)",
    ),
):
    register_backend(_spec)


def execute(
    query: JoinQuery,
    db: Database,
    algorithm: str = "auto",
    index_kind: Optional[str] = None,
    gao: Optional[Sequence[str]] = None,
    plan: Optional[Plan] = None,
    probe_certificate: bool = False,
    use_cache: bool = True,
    **plan_kwargs,
) -> ExecutionResult:
    """Plan (unless a plan is supplied) and run a join query.

    The single entry point the CLI and benchmarks dispatch through;
    ``algorithm="auto"`` selects the cost-optimal backend, any registered
    backend name forces it.
    """
    if plan is None:
        plan = plan_query(
            query, db, algorithm=algorithm, index_kind=index_kind,
            gao=gao, probe_certificate=probe_certificate,
            use_cache=use_cache, **plan_kwargs,
        )
    spec = _REGISTRY.get(plan.backend)
    if spec is None:
        raise ValueError(f"no registered backend named {plan.backend!r}")
    t0 = time.perf_counter()
    tuples, stats, ran_gao = spec.runner(query, db, plan)
    elapsed = time.perf_counter() - t0
    return ExecutionResult(
        tuples=tuples,
        variables=query.variables,
        stats=stats,
        gao=ran_gao,
        backend=plan.backend,
        plan=plan,
        elapsed=elapsed,
    )
