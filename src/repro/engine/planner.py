"""The adaptive query planner: Table 1 as a decision procedure.

``plan_query`` inspects a query's structure (:func:`structure_of`) and
data statistics (:func:`collect_stats`), prices every registered backend
with the calibrated cost model, and returns a :class:`Plan` naming the
chosen backend, index kind and GAO together with the evidence behind the
choice — the full candidate table and the structural profile.

Plans are cached on ``(query signature ∘ hypergraph, stats fingerprint)``
so repeated executions of the same workload skip the width/LP analysis;
the cache is content-keyed, so reloading identical data hits it too.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.engine.cost import (
    CostEstimate,
    CostModel,
    StructureProfile,
    structure_of,
)
from repro.engine.stats import QueryStats, assumed_stats, collect_stats
from repro.obs import tracing as _tracing
from repro.obs.metrics import REGISTRY as _METRICS
from repro.relational.query import Database, JoinQuery

#: Aliases accepted wherever an algorithm name is expected.
ALGORITHM_ALIASES: Dict[str, str] = {
    "auto": "auto",
    "tetris": "tetris-preloaded",
    "tetris-preloaded": "tetris-preloaded",
    "tetris_preloaded": "tetris-preloaded",
    "preloaded": "tetris-preloaded",
    "tetris-reloaded": "tetris-reloaded",
    "tetris_reloaded": "tetris-reloaded",
    "reloaded": "tetris-reloaded",
    "leapfrog": "leapfrog",
    "yannakakis": "yannakakis",
    "hash": "hash",
    "nested-loop": "nested-loop",
    "nested_loop": "nested-loop",
}


def normalize_algorithm(name: str) -> str:
    """Resolve an algorithm alias to a backend name (or ``"auto"``)."""
    try:
        return ALGORITHM_ALIASES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of "
            f"{sorted(set(ALGORITHM_ALIASES))}"
        ) from None


@dataclass(frozen=True)
class Plan:
    """An executable decision: backend + physical knobs + the evidence.

    ``workers > 1`` (equivalently ``num_shards > 1``) marks a
    shard-parallel plan: the executor partitions the output space into
    ``num_shards`` dyadic shards on ``split_attrs`` and runs the chosen
    backend on a pool of ``workers`` processes.
    """

    backend: str
    index_kind: str
    gao: Tuple[str, ...]
    predicted_cost: float
    chosen: CostEstimate
    candidates: Tuple[CostEstimate, ...]
    structure: StructureProfile
    stats: QueryStats
    algorithm: str
    cache_hit: bool = False
    workers: int = 1
    num_shards: int = 1
    split_attrs: Tuple[str, ...] = ()

    @property
    def variant(self) -> Optional[str]:
        """The Tetris variant this plan runs, if a Tetris backend."""
        if self.backend == "tetris-preloaded":
            return "preloaded"
        if self.backend == "tetris-reloaded":
            return "reloaded"
        return None


class _PlanCache:
    """A small content-keyed LRU for plans."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Plan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[Plan]:
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: Tuple, plan: Plan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


_PLAN_CACHE = _PlanCache()


def clear_plan_cache() -> None:
    """Drop every cached plan and the stats behind them."""
    from repro.engine.stats import clear_stats_cache

    _PLAN_CACHE.clear()
    clear_stats_cache()


def plan_cache_info() -> Dict[str, int]:
    return {
        "entries": len(_PLAN_CACHE),
        "hits": _PLAN_CACHE.hits,
        "misses": _PLAN_CACHE.misses,
        "capacity": _PLAN_CACHE.capacity,
    }


def _collect_plan_cache_metrics() -> Dict[str, int]:
    """Registry collector: the plan LRU under ``engine.plan_cache.*``."""
    return {
        "engine.plan_cache.hits": _PLAN_CACHE.hits,
        "engine.plan_cache.misses": _PLAN_CACHE.misses,
        "engine.plan_cache.entries": len(_PLAN_CACHE),
    }


_METRICS.register_collector("plan_cache", _collect_plan_cache_metrics)


def _choose(
    candidates: Sequence[CostEstimate],
) -> CostEstimate:
    applicable = [c for c in candidates if c.applicable]
    if not applicable:
        raise ValueError("no applicable backend for this query")
    # min() is stable, so BACKENDS order breaks exact ties.
    return min(applicable, key=lambda c: c.cost)


def plan_query(
    query: JoinQuery,
    db: Optional[Database] = None,
    stats: Optional[QueryStats] = None,
    algorithm: str = "auto",
    index_kind: Optional[str] = None,
    gao: Optional[Sequence[str]] = None,
    cost_model: Optional[CostModel] = None,
    probe_certificate: bool = False,
    probe_budget: int = 256,
    use_cache: bool = True,
    assumed_rows: int = 1000,
    workers: Optional[int] = None,
) -> Plan:
    """Produce a :class:`Plan` for a query.

    With ``algorithm="auto"`` every backend is priced and the cheapest
    wins; naming a backend forces it but still records its estimate.
    Statistics come from ``stats`` if given, else are collected from
    ``db``, else assumed uniform (``assumed_rows`` tuples per relation) —
    the no-data mode ``repro explain`` uses.  ``probe_certificate`` adds
    the bounded Tetris-Reloaded prefix run to the collected stats.

    ``workers=N`` puts shard-parallel execution on the table: under
    ``algorithm="auto"`` every backend is additionally priced as a
    parallel candidate on N workers (replication + shipping overheads
    included) and the overall cheapest wins — small queries stay serial;
    a *forced* backend combined with ``workers`` always takes the
    parallel plan (the caller asked for both).
    """
    with _tracing.span("plan", algorithm=algorithm) as sp:
        plan = _plan_query_impl(
            query, db, stats, algorithm, index_kind, gao, cost_model,
            probe_certificate, probe_budget, use_cache, assumed_rows,
            workers,
        )
        if sp is not None:
            sp.attrs.update(
                backend=plan.backend,
                cache_hit=plan.cache_hit,
                predicted_cost=plan.predicted_cost,
                workers=plan.workers,
            )
        return plan


def _plan_query_impl(
    query: JoinQuery,
    db: Optional[Database],
    stats: Optional[QueryStats],
    algorithm: str,
    index_kind: Optional[str],
    gao: Optional[Sequence[str]],
    cost_model: Optional[CostModel],
    probe_certificate: bool,
    probe_budget: int,
    use_cache: bool,
    assumed_rows: int,
    workers: Optional[int],
) -> Plan:
    algorithm = normalize_algorithm(algorithm)
    if gao is not None and sorted(gao) != sorted(query.variables):
        raise ValueError(
            f"GAO {tuple(gao)} is not a permutation of {query.variables}"
        )
    if stats is None:
        if db is not None:
            stats = collect_stats(
                query, db, probe=probe_certificate,
                probe_budget=probe_budget, probe_gao=gao,
            )
        else:
            stats = assumed_stats(query, rows=assumed_rows)
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    # Resolve the model before keying: calibration content (including
    # the ANALYZE loop's saved refits, which a default-built model picks
    # up) is part of the plan's identity — a recycled object id or a
    # ``repro calibrate`` run must never resurrect a plan priced under
    # different constants.
    model = cost_model if cost_model is not None else CostModel()
    # The shm data plane changes parallel pricing (attach charge vs.
    # replication), so a flipped REPRO_NO_SHM must never resurrect a
    # plan priced for the other wire.
    shm_flag = None
    if workers is not None:
        if model.shm is not None:
            shm_flag = model.shm
        else:
            from repro.parallel.shm import shm_enabled

            shm_flag = shm_enabled()
    key = (
        stats.fingerprint,
        algorithm,
        index_kind,
        tuple(gao) if gao is not None else None,
        probe_certificate,
        workers,
        shm_flag,
        tuple(sorted(model.calibration.items())),
    )
    if use_cache:
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            return dataclasses.replace(cached, cache_hit=True)

    profile = structure_of(query)
    num_shards = 1
    split_attrs: Tuple[str, ...] = ()
    if workers is not None:
        from repro.parallel.partition import (
            choose_split_attrs,
            default_num_shards,
        )

        distinct: Dict[str, int] = {}
        for p in stats.relations:
            for a in p.attrs:
                distinct[a] = max(distinct.get(a, 0), p.distinct_of(a))
        split_attrs = choose_split_attrs(query, distinct)
        if split_attrs:
            num_shards = default_num_shards(workers)
    candidates = model.estimate_all(
        query, profile, stats,
        workers=workers, num_shards=num_shards, split_attrs=split_attrs,
    )
    if algorithm == "auto":
        chosen = _choose(candidates)
    else:
        # A forced backend with a worker count takes the parallel
        # candidate; without one, the serial estimate as before.
        want_parallel = workers is not None and num_shards > 1
        by_key = {(c.backend, c.parallel): c for c in candidates}
        chosen = by_key.get((algorithm, want_parallel),
                            by_key[(algorithm, False)])
        if not chosen.applicable:
            raise ValueError(
                f"backend {algorithm!r} is not applicable: {chosen.reason}"
            )
    parallel = chosen.parallel
    plan = Plan(
        backend=chosen.backend,
        index_kind=index_kind if index_kind is not None else "btree",
        gao=tuple(gao) if gao is not None else profile.gao,
        predicted_cost=chosen.cost,
        chosen=chosen,
        candidates=candidates,
        structure=profile,
        stats=stats,
        algorithm=algorithm,
        workers=chosen.workers if parallel else 1,
        num_shards=num_shards if parallel else 1,
        split_attrs=split_attrs if parallel else (),
    )
    if use_cache:
        _PLAN_CACHE.put(key, plan)
    return plan
