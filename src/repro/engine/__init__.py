"""repro.engine — the adaptive query planner and unified execution engine.

Turns the paper's Table 1 into code: :func:`plan_query` inspects a
query's structure (acyclicity, treewidth, fhtw) and data statistics
(cardinalities, distinct counts, AGM bound, optional certificate probe),
prices every backend with a calibrated cost model, and
:func:`execute` dispatches the winner over a registry wrapping all of
:mod:`repro.joins` behind one result shape.

    from repro.engine import execute

    result = execute(query, db)            # algorithm="auto"
    print(result.backend, len(result))
    print(explain_text(result.plan, result))
"""

from repro.engine.cost import (
    BACKENDS,
    CostEstimate,
    CostModel,
    DEFAULT_CALIBRATION,
    StructureProfile,
    structure_of,
)
from repro.engine.executor import (
    BackendSpec,
    ExecutionResult,
    execute,
    register_backend,
    registered_backends,
)
from repro.engine.explain import explain_text, render_execution, render_plan
from repro.engine.planner import (
    ALGORITHM_ALIASES,
    Plan,
    clear_plan_cache,
    normalize_algorithm,
    plan_cache_info,
    plan_query,
)
from repro.engine.stats import (
    CertificateProbe,
    QueryStats,
    RelationProfile,
    assumed_stats,
    clear_stats_cache,
    collect_stats,
    probe_certificate,
)

__all__ = [
    "ALGORITHM_ALIASES",
    "BACKENDS",
    "BackendSpec",
    "CertificateProbe",
    "CostEstimate",
    "CostModel",
    "DEFAULT_CALIBRATION",
    "ExecutionResult",
    "Plan",
    "QueryStats",
    "RelationProfile",
    "StructureProfile",
    "assumed_stats",
    "clear_plan_cache",
    "clear_stats_cache",
    "collect_stats",
    "execute",
    "explain_text",
    "normalize_algorithm",
    "plan_cache_info",
    "plan_query",
    "probe_certificate",
    "register_backend",
    "registered_backends",
    "render_execution",
    "render_plan",
    "structure_of",
]
