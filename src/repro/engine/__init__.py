"""repro.engine — the adaptive query planner and unified execution engine.

Turns the paper's Table 1 into code: :func:`plan_query` inspects a
query's structure (acyclicity, treewidth, fhtw) and data statistics
(cardinalities, distinct counts, AGM bound, optional certificate probe),
prices every backend with a calibrated cost model, and
:func:`execute` dispatches the winner over a registry wrapping all of
:mod:`repro.joins` behind one result shape.  Results stream:
:func:`execute_cursor` returns a lazy :class:`ResultCursor`, and
``execute(..., limit=k, decode=dictionary)`` early-terminates after O(k)
rows and decodes them through a ValueDictionary.

    from repro.engine import execute, execute_cursor

    result = execute(query, db)            # algorithm="auto"
    print(result.backend, len(result))
    print(explain_text(result.plan, result))

    for row in execute_cursor(query, db, limit=10):
        ...                                # rows pulled lazily
"""

from repro.engine.codegen import (
    KernelCache,
    clear_kernel_caches,
    kernel_cache_info,
    kernel_cache_summary,
)
from repro.engine.cost import (
    BACKENDS,
    CostEstimate,
    CostModel,
    DEFAULT_CALIBRATION,
    StructureProfile,
    structure_of,
)
from repro.engine.executor import (
    BackendSpec,
    ExecutionResult,
    ResultCursor,
    execute,
    execute_cursor,
    register_backend,
    registered_backends,
)
from repro.engine.explain import explain_text, render_execution, render_plan
from repro.engine.planner import (
    ALGORITHM_ALIASES,
    Plan,
    clear_plan_cache,
    normalize_algorithm,
    plan_cache_info,
    plan_query,
)
from repro.engine.stats import (
    CertificateProbe,
    QueryStats,
    RelationProfile,
    assumed_stats,
    clear_stats_cache,
    collect_stats,
    probe_certificate,
)

__all__ = [
    "ALGORITHM_ALIASES",
    "BACKENDS",
    "BackendSpec",
    "CertificateProbe",
    "CostEstimate",
    "CostModel",
    "DEFAULT_CALIBRATION",
    "ExecutionResult",
    "KernelCache",
    "Plan",
    "QueryStats",
    "RelationProfile",
    "ResultCursor",
    "StructureProfile",
    "assumed_stats",
    "clear_kernel_caches",
    "clear_plan_cache",
    "clear_stats_cache",
    "collect_stats",
    "execute",
    "execute_cursor",
    "explain_text",
    "kernel_cache_info",
    "kernel_cache_summary",
    "normalize_algorithm",
    "plan_cache_info",
    "plan_query",
    "probe_certificate",
    "register_backend",
    "registered_backends",
    "render_execution",
    "render_plan",
    "structure_of",
]
