"""Statistics collection feeding the adaptive planner.

The planner's data signals, gathered once per (query, database) pair:

* **per-relation profiles** — cardinality and per-attribute distinct
  counts, read off the :meth:`Relation.distinct_counts` hook (cached on
  the immutable relation; counted off the columnar core's cached sorted
  views and columns, never a fresh sort);
* **output estimates** — the instance AGM bound (the provable upper
  bound of Table 1 row 2) and a System-R-style independence estimate,
  whose minimum is the planner's working Ẑ;
* an optional **certificate-size probe**: a budget-bounded prefix run of
  Tetris-Reloaded whose loaded-box count estimates the paper's |C| — the
  quantity that decides whether the beyond-worst-case row of Table 1
  (Õ(|C| + Z), Theorem 4.7) beats the Õ(N + Z) classics on an instance.

Every stats object carries a :attr:`fingerprint` so plans can be cached
and invalidated purely by content, never by object identity.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.obs import tracing as _tracing
from repro.obs.metrics import REGISTRY as _METRICS
from repro.relational.query import Database, JoinQuery


@dataclass(frozen=True)
class RelationProfile:
    """Statistics of one input relation."""

    name: str
    attrs: Tuple[str, ...]
    cardinality: int
    distinct: Mapping[str, int]
    #: Per-attribute (min, max) value ranges; empty when unknown.
    ranges: Mapping[str, Tuple[int, int]] = field(default_factory=dict)

    def distinct_of(self, attr: str) -> int:
        return self.distinct.get(attr, 1)

    def range_of(self, attr: str) -> Optional[Tuple[int, int]]:
        return self.ranges.get(attr)


@dataclass(frozen=True)
class CertificateProbe:
    """Outcome of the bounded Tetris-Reloaded prefix run.

    ``boxes_loaded`` counts knowledge-base loads during the prefix (gap
    boxes plus output witnesses — the certificate-plus-output work the
    Õ(|C| + Z) bound charges for).  ``complete`` means the run finished
    inside the budget, so ``boxes_loaded`` is the exact cost of a full
    Tetris-Reloaded evaluation rather than a lower bound.
    """

    boxes_loaded: int
    outputs_found: int
    complete: bool
    budget: int

    @property
    def certificate_estimate(self) -> int:
        return max(self.boxes_loaded - self.outputs_found, 1)


@dataclass(frozen=True)
class QueryStats:
    """Everything the cost model reads about a (query, database) pair."""

    relations: Tuple[RelationProfile, ...]
    total_tuples: int
    domain_depth: int
    agm: float
    independence_estimate: float
    fingerprint: Tuple
    assumed: bool = False
    probe: Optional[CertificateProbe] = None
    _by_name: Dict[str, RelationProfile] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self):
        self._by_name.update({p.name: p for p in self.relations})

    def relation(self, name: str) -> RelationProfile:
        return self._by_name[name]

    @property
    def output_estimate(self) -> float:
        """Ẑ: the smaller of the AGM bound and the independence estimate."""
        return min(self.agm, self.independence_estimate)

    def distinct_bound(self, attr: str) -> int:
        """Tightest distinct-count bound on an attribute across relations."""
        counts = [
            p.distinct_of(attr) for p in self.relations if attr in p.attrs
        ]
        return min(counts) if counts else 1


class ProbeBudgetExceeded(Exception):
    """Raised internally when the certificate probe runs out of budget."""


class _BudgetedOracle:
    """Wraps a QueryGapOracle, aborting once it has served ``budget`` boxes."""

    def __init__(self, oracle, budget: int):
        self._oracle = oracle
        self._budget = budget
        self.served = 0

    @property
    def attrs(self):
        return self._oracle.attrs

    def containing(self, unit_box):
        boxes = self._oracle.containing(unit_box)
        # Every probe costs at least one unit even when it finds nothing
        # (those misses are exactly the output tuples).
        self.served += max(len(boxes), 1)
        if self.served > self._budget:
            raise ProbeBudgetExceeded()
        return boxes

    def boxes(self):
        return self._oracle.boxes()


def probe_certificate(
    query: JoinQuery,
    db: Database,
    gao: Optional[Sequence[str]] = None,
    budget: int = 256,
) -> CertificateProbe:
    """Estimate |C| with a budget-bounded Tetris-Reloaded prefix run.

    Runs the on-demand (Reloaded) configuration against an oracle that
    aborts after serving ``budget`` gap boxes; instances whose certificate
    is small — the Theorem 4.7 regime — complete outright and return an
    exact cost, everything else reports the bound was exceeded.
    """
    from repro.core.resolution import ResolutionStats
    from repro.core.tetris import TetrisEngine
    from repro.joins.tetris_join import make_oracle

    oracle, gao = make_oracle(query, db, index_kind="btree", gao=gao)
    budgeted = _BudgetedOracle(oracle, budget)
    run_stats = ResolutionStats()
    attrs = oracle.attrs
    sao = tuple(attrs.index(a) for a in gao)
    engine = TetrisEngine(
        len(attrs), db.domain.depth, sao=sao, stats=run_stats
    )
    try:
        outputs = engine.run(
            budgeted, preload=False, mode="resume", max_outputs=budget
        )
    except ProbeBudgetExceeded:
        return CertificateProbe(
            boxes_loaded=run_stats.boxes_loaded,
            outputs_found=0,
            complete=False,
            budget=budget,
        )
    complete = len(outputs) < budget
    return CertificateProbe(
        boxes_loaded=run_stats.boxes_loaded,
        outputs_found=len(outputs),
        complete=complete,
        budget=budget,
    )


def _agm_from_sizes(
    query: JoinQuery, sizes: Mapping[str, int]
) -> float:
    """Instance AGM bound 2^{ρ*} from per-relation cardinalities."""
    from repro.relational.agm import fractional_edge_cover

    if any(sizes[a.name] == 0 for a in query.atoms):
        return 0.0
    weights = [
        math.log2(sizes[a.name]) if sizes[a.name] > 1 else 0.0
        for a in query.atoms
    ]
    edges = [frozenset(a.attrs) for a in query.atoms]
    value, _ = fractional_edge_cover(query.variables, edges, weights)
    return 2.0 ** value


def value_overlap_fraction(
    ranges: Sequence[Tuple[int, int]]
) -> float:
    """Shared fraction of the widest of several (min, max) value ranges.

    ``1.0`` means every range covers the intersection of all of them;
    ``0.0`` means some pair is disjoint — the join on that attribute is
    empty no matter what the independence estimate says.  This is what
    lets the planner price the split-certificate family (disjoint value
    halves) correctly for backends that seek past empty intersections.
    """
    lo = max(r[0] for r in ranges)
    hi = min(r[1] for r in ranges)
    if hi < lo:
        return 0.0
    width = max(r[1] - r[0] + 1 for r in ranges)
    return (hi - lo + 1) / width


def apply_matching_selectivities(
    estimate: float, occurrences: Mapping[str, Sequence[int]]
) -> float:
    """Divide a cross-product estimate by per-variable join selectivities.

    ``occurrences`` maps each variable to the distinct counts it has in
    every relation mentioning it; under independence each repeated
    occurrence contributes a ``1 / max distinct`` matching factor — the
    System-R rule the cost model's quantity estimates share.
    """
    for counts in occurrences.values():
        top = max(counts)
        for _ in range(len(counts) - 1):
            estimate /= max(top, 1)
    return estimate


def _independence_estimate(
    query: JoinQuery, profiles: Sequence[RelationProfile]
) -> float:
    """System-R style output estimate under attribute independence."""
    estimate = 1.0
    for p in profiles:
        estimate *= p.cardinality
    if estimate == 0.0:
        return 0.0
    occurrences: Dict[str, list] = {}
    for p in profiles:
        for a in p.attrs:
            occurrences.setdefault(a, []).append(p.distinct_of(a))
    return apply_matching_selectivities(estimate, occurrences)


class _StatsCache:
    """Content-keyed LRU so repeated executions skip the AGM LP."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, QueryStats]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[QueryStats]:
        stats = self._entries.get(key)
        if stats is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return stats

    def put(self, key: Tuple, stats: QueryStats) -> None:
        self._entries[key] = stats
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_STATS_CACHE = _StatsCache()


def clear_stats_cache() -> None:
    _STATS_CACHE.clear()


def _collect_stats_cache_metrics() -> Dict[str, int]:
    """Registry collector: the stats LRU under ``engine.stats_cache.*``."""
    return {
        "engine.stats_cache.hits": _STATS_CACHE.hits,
        "engine.stats_cache.misses": _STATS_CACHE.misses,
        "engine.stats_cache.entries": len(_STATS_CACHE._entries),
    }


_METRICS.register_collector("stats_cache", _collect_stats_cache_metrics)


def collect_stats(
    query: JoinQuery,
    db: Database,
    probe: bool = False,
    probe_budget: int = 256,
    probe_gao: Optional[Sequence[str]] = None,
) -> QueryStats:
    """Gather the planner's statistics for a query over a database.

    Results are cached on content (query signature + per-relation
    fingerprints + probe configuration): relations are immutable, so
    identical fingerprints guarantee identical statistics.
    """
    key = (
        tuple((a.name, a.attrs) for a in query.atoms),
        db.stats_fingerprint(),
        probe,
        probe_budget if probe else None,
        tuple(probe_gao) if probe and probe_gao is not None else None,
    )
    cached = _STATS_CACHE.get(key)
    if cached is not None:
        return cached
    span = _tracing.span("stats.collect", relations=len(query.atoms))
    with span:
        return _collect_stats_uncached(
            query, db, key, probe, probe_budget, probe_gao
        )


def _collect_stats_uncached(
    query: JoinQuery,
    db: Database,
    key: Tuple,
    probe: bool,
    probe_budget: int,
    probe_gao: Optional[Sequence[str]],
) -> QueryStats:
    profiles = []
    for atom in query.atoms:
        rel = db[atom.name]
        counts = rel.distinct_counts()
        # Key every per-attribute map by the *query* attribute names
        # (positional translation): a relation whose schema names differ
        # from the atom's variables must not silently degrade to
        # distinct=1 everywhere.
        profiles.append(
            RelationProfile(
                name=atom.name,
                attrs=atom.attrs,
                cardinality=len(rel),
                distinct={
                    attr: counts[a]
                    for attr, a in zip(atom.attrs, rel.attrs)
                    if a in counts
                },
                ranges={
                    attr: rel.column_ranges()[a]
                    for attr, a in zip(atom.attrs, rel.attrs)
                    if a in rel.column_ranges()
                },
            )
        )
    probe_result = None
    if probe:
        with _tracing.span("stats.probe", budget=probe_budget):
            probe_result = probe_certificate(
                query, db, gao=probe_gao, budget=probe_budget
            )
    sizes = {p.name: p.cardinality for p in profiles}
    stats = QueryStats(
        relations=tuple(profiles),
        total_tuples=db.total_tuples,
        domain_depth=db.domain.depth,
        agm=_agm_from_sizes(query, sizes),
        independence_estimate=_independence_estimate(query, profiles),
        fingerprint=key,
        probe=probe_result,
    )
    _STATS_CACHE.put(key, stats)
    return stats


def assumed_stats(
    query: JoinQuery, rows: int = 1000, depth: Optional[int] = None
) -> QueryStats:
    """Synthetic statistics for planning without data (``repro explain``).

    Every relation is assumed to hold ``rows`` tuples with all-distinct
    attribute values — the uniform no-information default.  The resulting
    stats are flagged :attr:`QueryStats.assumed` so EXPLAIN output and the
    plan cache can tell them apart from measured ones.
    """
    from repro.relational.schema import Domain

    if depth is None:
        depth = Domain.for_values(max(rows - 1, 1)).depth
    profiles = tuple(
        RelationProfile(
            name=atom.name,
            attrs=atom.attrs,
            cardinality=rows,
            distinct={a: rows for a in atom.attrs},
        )
        for atom in query.atoms
    )
    sizes = {p.name: p.cardinality for p in profiles}
    fingerprint = (
        tuple((a.name, a.attrs) for a in query.atoms),
        ("assumed", rows, depth),
    )
    return QueryStats(
        relations=profiles,
        total_tuples=rows * len(profiles),
        domain_depth=depth,
        agm=_agm_from_sizes(query, sizes),
        independence_estimate=_independence_estimate(query, profiles),
        fingerprint=fingerprint,
        assumed=True,
    )
