"""EXPLAIN rendering: a Plan as a human-readable decision tree.

``render_plan`` shows the structural evidence, the statistics, every
candidate's instantiated Table 1 formula with its calibrated cost, and
the chosen backend; ``render_execution`` appends the predicted-vs-actual
section after a run.  Output is deterministic for fixed inputs (timings
are confined to the execution section), which the golden CLI test relies
on.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.engine.executor import ExecutionResult
from repro.engine.planner import Plan


def _fmt(x: float) -> str:
    """Stable short formatting for costs/estimates (no platform drift)."""
    if x != x or x in (float("inf"), float("-inf")):
        return "∞"
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:.4g}"


def render_plan(plan: Plan) -> str:
    """The EXPLAIN tree of a plan."""
    s = plan.structure
    st = plan.stats
    lines: List[str] = []
    lines.append("EXPLAIN")
    lines.append("├─ structure")
    lines.append(f"│   ├─ α-acyclic   : {s.acyclic}")
    lines.append(f"│   ├─ treewidth   : {s.treewidth}")
    lines.append(f"│   ├─ fhtw ≤      : {_fmt(s.fhtw_upper)}")
    lines.append(f"│   ├─ GAO         : {', '.join(plan.gao)}")
    lines.append(f"│   └─ Table 1 row : {s.table1_row}")
    source = "assumed (no data)" if st.assumed else "measured"
    lines.append(f"├─ statistics [{source}]")
    lines.append(
        f"│   ├─ N = {st.total_tuples} tuples over "
        f"{len(st.relations)} relations, domain depth {st.domain_depth}"
    )
    for p in st.relations:
        distinct = ", ".join(
            f"d({a})={p.distinct_of(a)}" for a in p.attrs
        )
        lines.append(f"│   ├─ {p.name}: |{p.name}|={p.cardinality}  {distinct}")
    if st.probe is not None:
        probe = st.probe
        status = "complete" if probe.complete else "budget exceeded"
        lines.append(
            f"│   ├─ certificate probe: {probe.boxes_loaded} boxes loaded, "
            f"{probe.outputs_found} outputs ({status}, "
            f"budget {probe.budget})"
        )
    lines.append(
        f"│   └─ Ẑ ≈ {_fmt(st.output_estimate)}  "
        f"(AGM {_fmt(st.agm)}, independence "
        f"{_fmt(st.independence_estimate)})"
    )
    lines.append("├─ candidates")

    def display(c) -> str:
        return f"{c.backend} ∥{c.workers}" if c.parallel else c.backend

    width = max(len(display(c)) for c in plan.candidates)
    ordered = sorted(plan.candidates, key=lambda c: c.cost)
    for i, c in enumerate(ordered):
        branch = "└─" if i == len(ordered) - 1 else "├─"
        marker = " ◀" if c == plan.chosen else ""
        if c.applicable:
            lines.append(
                f"│   {branch} {display(c):<{width}}  "
                f"cost≈{_fmt(c.cost):>10}  {c.formula}{marker}"
            )
        else:
            lines.append(
                f"│   {branch} {display(c):<{width}}  "
                f"{'—':>15}  not applicable: {c.reason}"
            )
    cached = ", cached plan" if plan.cache_hit else ""
    lines.append(
        f"└─ plan: {plan.backend}  (index {plan.index_kind}; "
        f"predicted cost {_fmt(plan.predicted_cost)}{cached})"
    )
    if plan.num_shards > 1:
        lines.append(
            f"    └─ parallel: {plan.workers} worker"
            f"{'s' if plan.workers != 1 else ''} × {plan.num_shards} "
            f"shards, split on ({', '.join(plan.split_attrs)})"
        )
    return "\n".join(lines)


#: Decoded output rows shown by ``repro explain --execute`` before the
#: rendering elides the rest.
_MAX_RENDERED_ROWS = 20

#: Shards listed individually in the EXPLAIN shard tree (busiest first)
#: before the rendering elides the rest.
_MAX_RENDERED_SHARDS = 8


def _render_shard_tree(report) -> List[str]:
    """The parallel section of an executed plan: totals, then the shard
    tree — every executed shard's dyadic cell, worker, output size and
    in-worker compute time (busiest first)."""
    split = ", ".join(report.split_attrs)
    resh = (
        f" (+{report.rows_reshipped} re-shipped, "
        f"{report.shards_stolen} stolen)"
        if report.rows_reshipped or report.shards_stolen
        else ""
    )
    lines = [
        f"├─ parallel    : {report.workers} workers × "
        f"{report.executed_shards} shards run, {report.pruned_shards} "
        f"pruned (split on {split})",
        f"│   ├─ shipped  : {report.rows_shipped} rows{resh}, "
        f"{report.bytes_shipped} B wire "
        f"(nominal {report.bytes_nominal} B), ref hits "
        f"{report.ref_hits}/{report.refs_total}",
    ]
    if report.shm_ships or report.shm_fallbacks:
        lines.append(
            f"│   ├─ shm      : {report.shm_ships} segment refs, "
            f"{report.shm_attached_bytes} B attached in "
            f"{report.shm_attaches} attaches "
            f"({report.shm_attach_seconds:.4f}s), "
            f"{report.shm_fallbacks} fallbacks"
        )
    if report.had_faults:
        serial = report.shards_quarantined + report.serial_fallback_shards
        notes = [
            f"{report.worker_respawns} workers respawned",
            f"{report.shard_retries} shards retried",
            f"{serial} run serially in-parent",
        ]
        if report.shm_export_errors:
            notes.append(
                f"{report.shm_export_errors} shm exports degraded"
            )
        if report.timed_out:
            notes.append("DEADLINE EXCEEDED (partial run)")
        lines.append(f"│   ├─ faults   : {', '.join(notes)}")
    lines.append(
        f"│   ├─ makespan : {report.makespan_seconds:.4f}s "
        f"(busiest worker {report.max_worker_seconds:.4f}s, "
        f"partition {report.partition_seconds:.4f}s, "
        f"balance {report.balance:.2f})"
    )
    details = sorted(report.shard_details, key=lambda d: -d[3])
    shown = details[:_MAX_RENDERED_SHARDS]
    for i, (desc, worker, rows, seconds) in enumerate(shown):
        last = i == len(shown) - 1 and len(details) <= len(shown)
        branch = "└─" if last else "├─"
        where = "parent (serial)" if worker < 0 else f"worker {worker}"
        lines.append(
            f"│   {branch} {desc}  → {where}: {rows} rows, "
            f"{seconds:.4f}s"
        )
    hidden = len(details) - len(shown)
    if hidden > 0:
        lines.append(f"│   └─ … {hidden} more shards")
    return lines


def render_execution(result: ExecutionResult) -> str:
    """Predicted-vs-actual postscript for an executed plan.

    When the result carries dictionary-decoded rows (``execute(...,
    decode=dictionary)``), a sample of them is appended so EXPLAIN output
    shows real values, not dictionary codes.
    """
    plan = result.plan
    tuple_note = (
        f"{len(result.tuples)} (limit {result.limit})"
        if result.limit is not None
        else f"{len(result.tuples)} "
        f"(predicted Ẑ ≈ {_fmt(plan.stats.output_estimate)})"
    )
    lines = [
        "execution",
        f"├─ backend     : {result.backend}",
        f"├─ tuples      : {tuple_note}",
        f"├─ wall time   : {result.elapsed:.4f}s",
    ]
    if result.metrics is not None:
        # The consolidated metrics block: this query's registry delta —
        # plan/stats/kernel cache traffic, view churn, resolution
        # counters, shard shipping — one namespace instead of the old
        # per-subsystem summary lines.
        lines.append("├─ metrics")
        from repro.obs.metrics import render_metrics

        lines.extend(
            render_metrics(result.metrics.nonzero(), indent="│   ")
        )
    else:
        from repro.engine.codegen import kernel_cache_summary

        lines.append(f"├─ kernels     : {kernel_cache_summary()}")
    if result.parallel is not None:
        lines.extend(_render_shard_tree(result.parallel))
    if result.decode is None:
        lines.append(f"└─ engine work : {result.stats.summary()}")
    else:
        lines.append(f"├─ engine work : {result.stats.summary()}")
        lines.append(
            f"└─ output ({', '.join(result.variables)}), decoded"
        )
        # Decode only the rendered sample — decoded_rows() is lazy.
        sample = itertools.islice(
            result.decoded_rows(), _MAX_RENDERED_ROWS
        )
        for row in sample:
            lines.append("    " + ", ".join(str(v) for v in row))
        hidden = len(result.tuples) - _MAX_RENDERED_ROWS
        if hidden > 0:
            lines.append(f"    … {hidden} more rows")
    return "\n".join(lines)


def explain_text(
    plan: Plan, result: "ExecutionResult | None" = None
) -> str:
    """Full EXPLAIN output: the plan tree plus execution stats if run."""
    text = render_plan(plan)
    if result is not None:
        text = f"{text}\n{render_execution(result)}"
    return text
