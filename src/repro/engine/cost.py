"""The planner's cost model: Table 1 of the paper, instantiated.

Each backend gets a cost estimate of the form

    cost = calibration[backend] × quantity(structure, stats)

where *quantity* is the backend's asymptotic running-time expression
evaluated on the instance's statistics:

* ``yannakakis`` / ``tetris-preloaded`` on α-acyclic queries — Õ(N + Z)
  (Table 1 row 1 / Theorem D.8);
* ``tetris-preloaded`` on cyclic queries — Õ(N^fhtw + Z) (row 3 /
  Theorem D.9), with fhtw upper-bounded by the treewidth-optimal
  elimination order's decomposition;
* ``tetris-reloaded`` — Õ(|C| + Z) at treewidth 1 (row 4 / Theorem 4.7)
  and Õ(|C|^{w+1} + Z) at treewidth w (row 5 / Theorem 4.9), using the
  certificate probe's |C| estimate when available and |C| ≤ N·d otherwise;
* ``leapfrog`` — the AGM bound Õ(N^ρ*) (row 2, the [52]/[72] class);
* ``hash`` / ``nested-loop`` — classical System-R style intermediate-size
  estimates under attribute independence.

The *calibration* vector absorbs constant factors the asymptotics hide
(CPython dict probes vs. packed-int resolutions differ by orders of
magnitude).  Defaults were fitted on this repository's benchmark
workloads; :meth:`CostModel.calibrate` re-fits them from measured
timings — the constant-factor calibration hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.engine.stats import (
    QueryStats,
    apply_matching_selectivities,
    value_overlap_fraction,
)
from repro.obs.calibration import DEFAULT_UNIT_SECONDS, load_saved
from repro.relational.hypergraph import Hypergraph, gao_for_acyclic
from repro.relational.query import JoinQuery

#: Backends the unified engine can dispatch to, in preference order for
#: cost ties (earlier wins).
BACKENDS: Tuple[str, ...] = (
    "yannakakis",
    "hash",
    "leapfrog",
    "tetris-reloaded",
    "tetris-preloaded",
    "nested-loop",
)

#: Abstract-operation cost per backend, in units of one hash-join probe.
#: Fitted on the bench_planner workloads (triangle / path / star / cycle /
#: clique families at bench sizes); ``CostModel.calibrate`` refits.
#: The Tetris constants were halved (12 → 6) after the frontier-resuming
#: kernel overhaul (see BENCH_tetris_core.json: ~2× geomean over the old
#: kernel), and Leapfrog's lowered for the galloping-seek rewrite, so
#: ``algorithm="auto"`` prices the faster hot paths correctly.
DEFAULT_CALIBRATION: Dict[str, float] = {
    "yannakakis": 1.0,
    "hash": 1.0,
    "leapfrog": 1.3,
    "tetris-reloaded": 6.0,
    "tetris-preloaded": 6.0,
    "nested-loop": 0.7,
}


@dataclass(frozen=True)
class StructureProfile:
    """The structural planning signals of a query (Table 1's row keys)."""

    acyclic: bool
    treewidth: int
    elimination_order: Tuple[str, ...]
    fhtw_upper: float
    gao: Tuple[str, ...]
    num_vars: int

    @property
    def table1_row(self) -> str:
        if self.acyclic:
            return "α-acyclic: Õ(N + Z) [Yannakakis / Thm D.8]"
        if self.treewidth == 1:
            return "treewidth 1: Õ(|C| + Z) [Thm 4.7]"
        return (
            f"fhtw ≤ {self.fhtw_upper:g}: Õ(N^{self.fhtw_upper:g} + Z) "
            f"[Thm D.9]"
        )


def structure_of(query: JoinQuery) -> StructureProfile:
    """Analyze a query's hypergraph once, for planning.

    fhtw is upper-bounded by the cover number of the treewidth-optimal
    elimination order's decomposition — one LP per bag instead of the
    exact-but-exponential search in :func:`repro.relational.agm.fhtw`,
    which planning latency cannot afford.
    """
    h = Hypergraph.of_query(query)
    acyclic = h.is_alpha_acyclic()
    width, order = h.treewidth()
    if acyclic:
        gao = gao_for_acyclic(h)
        fhtw_upper = 1.0
    else:
        gao = tuple(order)
        from repro.relational.agm import fhtw_of_order

        fhtw_upper = fhtw_of_order(h, order)
    return StructureProfile(
        acyclic=acyclic,
        treewidth=width,
        elimination_order=tuple(order),
        fhtw_upper=fhtw_upper,
        gao=gao,
        num_vars=query.num_vars,
    )


def _extend_left_deep(
    acc_size: float, acc_distinct: Dict[str, int], profile
) -> float:
    """One left-deep join step under independence.

    Returns the estimated size after joining ``profile`` onto an
    accumulator of ``acc_size`` tuples, dividing by the larger distinct
    count per shared variable, and folds the profile's distinct counts
    into ``acc_distinct`` (in place) for the next step.
    """
    out = acc_size * profile.cardinality
    for a in profile.attrs:
        if a in acc_distinct:
            out /= max(acc_distinct[a], profile.distinct_of(a), 1)
    for a in profile.attrs:
        d = profile.distinct_of(a)
        acc_distinct[a] = (
            min(acc_distinct[a], d) if a in acc_distinct else d
        )
    return out


@dataclass(frozen=True)
class CostEstimate:
    """One backend's predicted cost on an instance.

    ``parallel`` marks a *parallel-plan candidate*: the same backend run
    shard-parallel on ``workers`` processes, priced with the replication
    and shipping overheads of :meth:`CostModel.estimate_parallel` (a
    pool of one worker is still a parallel plan — sharded, dealt,
    merged — so the flag is explicit rather than inferred from the
    count).
    """

    backend: str
    applicable: bool
    quantity: float
    cost: float
    formula: str
    reason: str = ""
    workers: int = 1
    parallel: bool = False


class CostModel:
    """Calibrated Table 1 cost estimates over query statistics.

    Constants resolve in three layers: the fitted defaults shipped with
    the repo, then the **saved calibration file** the ANALYZE feedback
    loop writes (``repro calibrate``; skipped with ``use_saved=False``),
    then any explicit ``calibration`` mapping.  ``unit_seconds`` — the
    measured wall time of one abstract cost unit — turns predicted
    costs into predicted seconds (:meth:`predicted_seconds`), which is
    what EXPLAIN ANALYZE holds against the measured run.
    """

    def __init__(
        self,
        calibration: Optional[Mapping[str, float]] = None,
        unit_seconds: Optional[float] = None,
        use_saved: bool = True,
        shm: Optional[bool] = None,
    ):
        #: Whether parallel candidates are priced for the shared-memory
        #: data plane (one-time attach) or the pickle-ship wire
        #: (per-worker replication).  ``None`` — the default — resolves
        #: against the live :func:`repro.parallel.shm.shm_enabled` at
        #: estimate time, so ``REPRO_NO_SHM`` flips the pricing too.
        self.shm = shm
        self.calibration = dict(DEFAULT_CALIBRATION)
        self.unit_seconds = DEFAULT_UNIT_SECONDS
        if use_saved:
            saved = load_saved()
            if saved is not None:
                self.calibration.update(
                    {
                        b: float(v)
                        for b, v in saved["calibration"].items()
                        if isinstance(v, (int, float)) and v > 0
                    }
                )
                try:
                    self.unit_seconds = float(saved["unit_seconds"])
                except (KeyError, TypeError, ValueError):
                    pass
        if calibration:
            self.calibration.update(calibration)
        if unit_seconds is not None:
            self.unit_seconds = unit_seconds

    def predicted_seconds(self, cost: float) -> float:
        """A predicted cost in wall seconds, via the calibrated unit."""
        return cost * self.unit_seconds

    #: Abstract-operation charge per binary join step (dict build,
    #: per-step list allocation) on top of the tuple-proportional work.
    STEP_OVERHEAD = 120.0

    #: Parallel-plan pricing, in the same hash-probe units (measured at
    #: ~0.8µs each on the bench workloads).  Dispatching a shard costs a
    #: task pickle + pipe round trip (~0.2ms ≈ 250 units).  Input rows
    #: now ship as flat ``array('q')`` column blobs (one memcpy per
    #: column, no per-tuple pickling): ~8.5ns per row round trip
    #: (≈ 0.01 units) on a 100k-row binary relation — priced above the
    #: raw byte cost because the first ship also rebuilds worker-side
    #: sorted views and indexes (amortized across repeats by the
    #: per-worker relation cache).  Output rows still cross the wire as
    #: tuple lists and pay the parent-side merge, so their charge is
    #: unchanged.
    PARALLEL_SHARD_OVERHEAD = 250.0
    PARALLEL_SHIP_INPUT = 0.04
    PARALLEL_SHIP_OUTPUT = 0.25

    #: Flat charge per (atom × worker) for the shared-memory data
    #: plane: one segment attach + header parse + zero-copy column
    #: views (~50µs ≈ 60 units).  When shm is on, this *replaces* the
    #: per-row input shipping term and the replication factor — input
    #: bytes are laid out once in the parent and mapped, not copied per
    #: worker — which is what makes the planner pick parallel plans
    #: earlier on large inputs.
    PARALLEL_SHM_ATTACH = 60.0

    # -- per-backend quantities ------------------------------------------------

    def _leapfrog_quantity(
        self,
        query: JoinQuery,
        profile: StructureProfile,
        stats: QueryStats,
    ) -> float:
        """Σ over GAO prefixes of estimated partial bindings.

        Leapfrog's work is the number of partial bindings it visits at
        each level; under independence the bindings over a variable
        prefix are the cross product of each relation's projection onto
        the prefix divided by the matching selectivities — an
        output-sensitive estimate the raw AGM bound (which stays the
        provable cap, scaled by the [52]/[72] n·polylog) lacks.  Two
        refinements track the galloping rewrite: there is no per-call
        trie build (the cached sorted views are shared), so the old
        Θ(N) setup term is gone, and each shared variable's bindings
        are scaled by its value-range overlap across relations — the
        seek gallops straight past disjoint ranges, which is what makes
        the split-certificate family nearly free.
        """
        prefix: set = set()
        bindings_sum = 0.0
        for v in profile.gao:
            prefix.add(v)
            factors = 1.0
            occurrences: Dict[str, list] = {}
            spans: Dict[str, list] = {}
            for p in stats.relations:
                shared = [a for a in p.attrs if a in prefix]
                if not shared:
                    continue
                size = 1.0
                for a in shared:
                    size *= p.distinct_of(a)
                factors *= min(float(p.cardinality), size)
                for a in shared:
                    occurrences.setdefault(a, []).append(p.distinct_of(a))
                    r = p.range_of(a)
                    if r is not None:
                        spans.setdefault(a, []).append(r)
            level = apply_matching_selectivities(factors, occurrences)
            for a, ranges in spans.items():
                if len(ranges) > 1:
                    level *= value_overlap_fraction(ranges)
            bindings_sum += level
        cap = profile.num_vars * max(stats.agm, 1.0)
        # Per-atom seek/cursor setup replaces the seed's trie build.
        setup = len(query.atoms) * self.STEP_OVERHEAD
        return setup + min(bindings_sum, cap)

    def _hash_plan_quantity(
        self, query: JoinQuery, stats: QueryStats
    ) -> float:
        """Σ (build + probe + intermediate) of the default left-deep plan.

        Mirrors ``join_hash``'s connectivity-aware size-ascending atom
        order and estimates each intermediate under independence:
        joining on shared variables divides the cross product by the
        larger distinct count per variable.
        """
        remaining = {a.name: a for a in query.atoms}
        first = min(
            remaining,
            key=lambda n: (stats.relation(n).cardinality, n),
        )
        order = [remaining.pop(first)]
        bound = set(order[0].attrs)
        while remaining:
            connected = [
                n for n, a in remaining.items() if bound & set(a.attrs)
            ]
            pool = connected if connected else list(remaining)
            nxt = min(
                pool, key=lambda n: (stats.relation(n).cardinality, n)
            )
            order.append(remaining.pop(nxt))
            bound |= set(order[-1].attrs)
        acc_size = float(stats.relation(order[0].name).cardinality)
        acc_distinct = dict(stats.relation(order[0].name).distinct)
        total = acc_size
        for atom in order[1:]:
            p = stats.relation(atom.name)
            acc_size = _extend_left_deep(acc_size, acc_distinct, p)
            total += p.cardinality + acc_size + self.STEP_OVERHEAD
        return total

    def _nested_loop_quantity(
        self, query: JoinQuery, stats: QueryStats
    ) -> float:
        """Σ over prefixes of (matching partials so far) × (next |R|)."""
        acc_size = 1.0
        acc_distinct: Dict[str, int] = {}
        total = 0.0
        for atom in query.atoms:
            p = stats.relation(atom.name)
            total += acc_size * p.cardinality
            acc_size = _extend_left_deep(acc_size, acc_distinct, p)
        return total

    def _certificate_estimate(self, stats: QueryStats) -> Tuple[float, str]:
        """(|Ĉ|, provenance) — probed when available, N·d worst case else."""
        if stats.probe is not None and stats.probe.complete:
            return float(stats.probe.boxes_loaded), "probed"
        bound = float(stats.total_tuples) * max(stats.domain_depth, 1)
        if stats.probe is not None:
            return max(float(stats.probe.boxes_loaded), bound), "exceeded"
        return bound, "N·d bound"

    # -- the estimate API ------------------------------------------------------

    def estimate(
        self,
        backend: str,
        query: JoinQuery,
        profile: StructureProfile,
        stats: QueryStats,
    ) -> CostEstimate:
        n = float(stats.total_tuples)
        z = stats.output_estimate
        depth = max(stats.domain_depth, 1)
        # Tetris's per-step work scales with the SAO traversal depth n·d;
        # the classical backends touch tuples, not dyadic levels.
        tetris_polylog = profile.num_vars * depth
        factor = self.calibration.get(backend, 1.0)

        if backend == "yannakakis":
            if not profile.acyclic:
                return CostEstimate(
                    backend, False, math.inf, math.inf,
                    "Õ(N + Z)", reason="query is not α-acyclic",
                )
            # Two semijoin passes plus the join pass each touch every
            # tuple: 3N + Z with a per-step charge for the ~3·|atoms|
            # hash tables the passes build.
            steps = 3 * len(query.atoms)
            q = 3 * n + z + steps * self.STEP_OVERHEAD
            return CostEstimate(
                backend, True, q, factor * q,
                f"Õ(N + Z) = 3·{n:g} + {z:g} (+{steps} passes)",
            )
        if backend == "leapfrog":
            q = self._leapfrog_quantity(query, profile, stats)
            return CostEstimate(
                backend, True, q, factor * q,
                f"Õ(N + Σ prefix bindings) ≈ {q:g} (AGM {stats.agm:g})",
            )
        if backend == "hash":
            q = self._hash_plan_quantity(query, stats)
            return CostEstimate(
                backend, True, q, factor * q,
                f"N + Σ intermediates ≈ {q:g}",
            )
        if backend == "nested-loop":
            q = self._nested_loop_quantity(query, stats)
            return CostEstimate(
                backend, True, q, factor * q,
                f"Σ prefix scans ≈ {q:g}",
            )
        if backend == "tetris-preloaded":
            if profile.acyclic:
                q = (n + z) * tetris_polylog
                formula = f"Õ(N + Z) = ({n:g} + {z:g})·{tetris_polylog}"
            else:
                body = n ** profile.fhtw_upper
                q = (body + z) * tetris_polylog
                formula = (
                    f"Õ(N^fhtw + Z) = ({n:g}^{profile.fhtw_upper:g} "
                    f"+ {z:g})·{tetris_polylog}"
                )
            return CostEstimate(backend, True, q, factor * q, formula)
        if backend == "tetris-reloaded":
            c, provenance = self._certificate_estimate(stats)
            w = max(profile.treewidth, 1)
            if w == 1:
                body = c
                formula = f"Õ(|C| + Z), |Ĉ|={c:g} ({provenance})"
            else:
                body = c ** (w + 1)
                formula = (
                    f"Õ(|C|^{w + 1} + Z), |Ĉ|={c:g} ({provenance})"
                )
            # + N for the index build Tetris-Reloaded still pays even
            # when the certificate is O(1).
            q = n + (body + z) * tetris_polylog
            return CostEstimate(backend, True, q, factor * q, formula)
        raise ValueError(f"unknown backend {backend!r}")

    # -- parallel-plan candidates ----------------------------------------------

    def _replication(
        self,
        stats: QueryStats,
        split_attrs: Tuple[str, ...],
        num_shards: int,
    ) -> float:
        """Mean input-replication factor of a shard partition.

        A relation clipped on all split attributes is scanned once
        across the whole shard set; one clipped on a subset is
        re-scanned by the shards that only differ on the missing
        attributes.  Assuming split bits spread evenly over the split
        attributes, an atom covering ``c`` of ``k`` split attributes is
        replicated ``num_shards / 2^(c·bits/k)`` times; the model
        averages that over relations weighted by cardinality.
        """
        if not split_attrs:
            return float(num_shards)
        bits = max(num_shards.bit_length() - 1, 0)
        per_attr = bits / len(split_attrs)
        total = 0.0
        weighted = 0.0
        for p in stats.relations:
            covered = sum(1 for a in split_attrs if a in p.attrs)
            factor = max(1.0, num_shards / 2.0 ** (covered * per_attr))
            total += p.cardinality
            weighted += factor * p.cardinality
        return weighted / total if total else 1.0

    def estimate_parallel(
        self,
        base: CostEstimate,
        query: JoinQuery,
        profile: StructureProfile,
        stats: QueryStats,
        workers: int,
        num_shards: int,
        split_attrs: Tuple[str, ...],
    ) -> CostEstimate:
        """Price a backend run shard-parallel on ``workers`` processes.

        Speedup-aware: the backend's quantity splits into an
        input-proportional share and the rest (output/intermediate
        work, which partitions cleanly); both divide by the effective
        parallelism ``min(workers, shards)``.  On top ride the flat
        shard-dispatch charge and the output rows (returned and
        merged).  The input side depends on the data plane: over the
        pickle wire the input share pays the replication factor of
        partially-covered atoms plus per-row shipping; over shared
        memory the input is laid out once and mapped, so replication
        collapses to 1 and shipping becomes the flat
        :data:`PARALLEL_SHM_ATTACH` charge per (atom × worker).
        """
        import dataclasses

        if not base.applicable:
            return dataclasses.replace(
                base, workers=workers, parallel=True
            )
        use_shm = self.shm
        if use_shm is None:
            from repro.parallel.shm import shm_enabled

            use_shm = shm_enabled()
        p = max(1, min(workers, num_shards))
        n = float(stats.total_tuples)
        z = stats.output_estimate
        input_share = (
            min(1.0, n / base.quantity) if base.quantity > 0 else 0.0
        )
        if use_shm:
            replication = 1.0
            ship_input = (
                self.PARALLEL_SHM_ATTACH * len(query.atoms) * p
            )
            plane = "shm"
        else:
            replication = self._replication(
                stats, split_attrs, num_shards
            )
            ship_input = self.PARALLEL_SHIP_INPUT * n
            plane = f"repl {replication:.2g}"
        quantity = (
            base.quantity
            * (input_share * replication + (1.0 - input_share))
            / p
        )
        overhead = (
            self.PARALLEL_SHARD_OVERHEAD * num_shards
            + ship_input
            + self.PARALLEL_SHIP_OUTPUT * z
        )
        factor = self.calibration.get(base.backend, 1.0)
        return CostEstimate(
            base.backend,
            True,
            quantity,
            factor * quantity + overhead,
            f"{base.formula} ∥ ×{p} workers "
            f"({num_shards} shards, {plane})",
            workers=workers,
            parallel=True,
        )

    def estimate_all(
        self,
        query: JoinQuery,
        profile: StructureProfile,
        stats: QueryStats,
        workers: Optional[int] = None,
        num_shards: int = 1,
        split_attrs: Tuple[str, ...] = (),
    ) -> Tuple[CostEstimate, ...]:
        """Every candidate: serial per backend, plus — when a worker
        count is on the table and the split produced > 1 shard — one
        parallel candidate per backend at that worker count."""
        serial = tuple(
            self.estimate(b, query, profile, stats) for b in BACKENDS
        )
        if workers is None or workers < 1 or num_shards <= 1:
            return serial
        parallel = tuple(
            self.estimate_parallel(
                c, query, profile, stats, workers, num_shards, split_attrs
            )
            for c in serial
        )
        return serial + parallel

    # -- calibration hook ------------------------------------------------------

    def calibrate(
        self, measurements: Mapping[str, Tuple[float, float]]
    ) -> "CostModel":
        """Refit constant factors from ``{backend: (seconds, quantity)}``.

        Factors are normalized so ``hash`` stays at its current value —
        relative order is all the argmin ever reads.  Returns a new model;
        the receiver is untouched.
        """
        per_unit = {
            b: seconds / quantity
            for b, (seconds, quantity) in measurements.items()
            if quantity > 0 and seconds > 0
        }
        if not per_unit:
            return CostModel(
                self.calibration,
                unit_seconds=self.unit_seconds,
                use_saved=False,
            )
        anchor = per_unit.get("hash")
        scale = (
            self.calibration["hash"] / anchor
            if anchor
            else 1.0 / min(per_unit.values())
        )
        updated = dict(self.calibration)
        updated.update({b: v * scale for b, v in per_unit.items()})
        return CostModel(
            updated, unit_seconds=self.unit_seconds, use_saved=False
        )
