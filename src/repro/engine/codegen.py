"""Per-plan compiled kernels over flat columnar buffers.

Every hot join loop in the repo is an interpreter: the leapfrog
recursion re-reads ``relevant[level]`` participant lists per node, the
hash pipeline threads each row through a chain of generator frames, and
the Tetris resume skeleton re-tests mode flags (``uniform``,
``on_demand``, ``trust_kb``, frontier presence) on every traversal
step.  PR 4 showed the cure in miniature — the per-ndim ``exec``-compiled
probe walks of :class:`~repro.core.dyadic_tree.MultilevelDyadicTree` —
and this module generalizes it to whole backends: for each plan shape a
specialized Python source is generated with the per-level dispatch,
attribute-position lookups, packed-box bit arithmetic and mode branches
**constant-folded**, then ``exec``-compiled once and memoized in a
bounded LRU keyed by the plan's identity.

Three kernel families:

* :func:`leapfrog_kernel` — the generic-WCOJ intersection unrolled into
  literal nested ``while`` loops, one per GAO level, galloping directly
  over the relations' flat ``array('q')`` columns (no row-tuple
  indexing, no recursion, no generator frames between levels).
* :func:`hash_kernel` — the left-deep probe cascade as literal nested
  ``for`` loops: stage tables are built with scalar keys when the join
  key is a single attribute, and the final projection reads its
  component references straight out of the stage tuples instead of
  concatenating an accumulator tuple per row per stage.
* :func:`tetris_kernel` — the frontier-resuming skeleton of
  :meth:`~repro.core.tetris.TetrisEngine._run_resuming` with ``ndim``,
  ``depth``, the SAO permutation, the oracle discipline
  (preloaded/on-demand) and the knowledge-base capability probes all
  baked in as literals; box splits and SAO translations are unrolled
  per axis and the stats counters run as locals, flushed once on exit.

Cache keys include the *attribute names*, not just the shape — two
schemas that differ only in naming never share a kernel (the EXPLAIN
surface would otherwise lie about which query a cached kernel belongs
to).  Unsupported shapes (generalized dimension specs, tracing
resolvers, bounded resolvent admission, ``return_boxes``) return
``None`` and the caller falls back to the interpreted loop, which
remains the semantic reference.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.boxes import box_contains
from repro.core.resolution import Resolver, is_ordered_pair
from repro.obs import tracing as _tracing
from repro.obs.metrics import REGISTRY as _METRICS

#: Compiled kernels kept per family cache before LRU eviction.  Small
#: enough that a long-lived ``repro serve`` process stays bounded, large
#: enough that a benchmark sweep over every Table-1 family never thrashes.
KERNEL_CACHE_CAP = 256

#: Tetris kernels are specialized per ndim with unrolled per-axis splits;
#: beyond this the if/elif chains stop paying for themselves.
_TETRIS_NDIM_CAP = 8


class KernelCache:
    """A bounded LRU of compiled kernels with hit/miss/eviction counters.

    Negative results (``None`` — shape unsupported, caller should use
    the interpreted loop) are cached too, so repeated dispatch of an
    uncompilable plan costs one dict probe, not a re-analysis.
    """

    __slots__ = ("name", "capacity", "hits", "misses", "evictions",
                 "_entries")

    def __init__(self, name: str, capacity: int = KERNEL_CACHE_CAP):
        if capacity < 1:
            raise ValueError("kernel cache capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[tuple, Optional[Callable]]" = (
            OrderedDict()
        )

    def lookup(self, key: tuple, build: Callable[[], Optional[Callable]]):
        entries = self._entries
        if key in entries:
            self.hits += 1
            entries.move_to_end(key)
            return entries[key]
        self.misses += 1
        tracer = _tracing.current_tracer()
        if tracer is not None:
            # Span the build, not the probe: hits stay untraced (they
            # are the steady state), compiles are the rare event worth
            # a line on the timeline.
            with tracer.span("kernel.compile", cache=self.name):
                kernel = build()
        else:
            kernel = build()
        entries[key] = kernel
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        return kernel

    def __len__(self) -> int:
        return len(self._entries)

    def cached_sources(self) -> Tuple[str, ...]:
        """The generated source of every live compiled kernel (LRU order)."""
        return tuple(
            fn.source for fn in self._entries.values() if fn is not None
        )

    def info(self) -> dict:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0


_LEAPFROG_CACHE = KernelCache("leapfrog")
_HASH_CACHE = KernelCache("hash")
_TETRIS_CACHE = KernelCache("tetris")

_CACHES = (_LEAPFROG_CACHE, _HASH_CACHE, _TETRIS_CACHE)


def kernel_cache_info() -> dict:
    """Per-family cache statistics, keyed by kernel family name."""
    return {cache.name: cache.info() for cache in _CACHES}


def kernel_cache_summary() -> str:
    """One EXPLAIN-ready line: live kernels, hits, misses, evictions."""
    entries = sum(len(c) for c in _CACHES)
    hits = sum(c.hits for c in _CACHES)
    misses = sum(c.misses for c in _CACHES)
    evictions = sum(c.evictions for c in _CACHES)
    return (
        f"{entries} cached, {hits} hits, {misses} misses, "
        f"{evictions} evicted"
    )


def clear_kernel_caches() -> None:
    """Drop every compiled kernel and reset the counters (tests, serve)."""
    for cache in _CACHES:
        cache.clear()


def _collect_kernel_metrics() -> dict:
    """Registry collector: the kernel caches under ``kernels.compile.*``."""
    out = {
        "kernels.compile.hits": 0,
        "kernels.compile.misses": 0,
        "kernels.compile.evictions": 0,
        "kernels.cache.entries": 0,
    }
    for cache in _CACHES:
        out["kernels.compile.hits"] += cache.hits
        out["kernels.compile.misses"] += cache.misses
        out["kernels.compile.evictions"] += cache.evictions
        out["kernels.cache.entries"] += len(cache)
    return out


_METRICS.register_collector("kernels", _collect_kernel_metrics)


def _compile(source: str, namespace: dict) -> Callable:
    """``exec`` a generated ``def kernel(...)`` and return the function.

    The source is attached as ``kernel.source`` for inspection (README's
    "how do I read the generated code" path and the codegen tests).
    """
    ns = dict(namespace)
    code = compile(source, "<repro-kernel>", "exec")
    exec(code, ns)
    fn = ns["kernel"]
    fn.source = source
    return fn


# -- leapfrog -------------------------------------------------------------------


def _seek(col, lo: int, hi: int, v: int) -> int:
    """First index in ``[lo, hi)`` with ``col[idx] >= v`` (gallop + bisect).

    The flat-column twin of :func:`repro.joins.leapfrog._seek` — same
    exponential-probe-then-bisect shape, minus the per-row tuple
    indexing.
    """
    if lo >= hi or col[lo] >= v:
        return lo
    step = 1
    pos = lo
    while pos + step < hi and col[pos + step] < v:
        pos += step
        step <<= 1
    lo = pos + 1
    if pos + step < hi:
        hi = pos + step
    while lo < hi:
        mid = (lo + hi) >> 1
        if col[mid] < v:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _leapfrog_source(
    atoms: Sequence[Tuple[str, Tuple[str, ...]]],
    gao: Tuple[str, ...],
    variables: Tuple[str, ...],
) -> Optional[str]:
    """Generate the nested-loop leapfrog kernel for one (query, GAO).

    ``kernel(views)`` takes the per-atom GAO-restricted
    :class:`~repro.relational.relation.SortedView` objects (in atom
    order) and streams output rows in exactly the interpreted
    enumeration order.
    """
    n = len(gao)
    orders = [
        tuple(a for a in gao if a in attrs) for _name, attrs in atoms
    ]
    parts_by_level: List[List[Tuple[int, int]]] = []
    for var in gao:
        parts = [
            (ai, order.index(var))
            for ai, order in enumerate(orders)
            if var in order
        ]
        if not parts:
            return None  # unconstrained attribute: not a natural join
        parts_by_level.append(parts)

    lines: List[str] = ["def kernel(views):"]
    w = lines.append
    w("    seek = _seek")
    needed = sorted({p for parts in parts_by_level for p in parts})
    for ai, k in needed:
        w(f"    c{ai}_{k} = views[{ai}].column({k})")
    for ai in sorted({ai for ai, _ in needed}):
        w(f"    n{ai} = len(views[{ai}].rows)")

    def lo(ai: int, k: int) -> str:
        return "0" if k == 0 else f"p{ai}_{k - 1}"

    def hi(ai: int, k: int) -> str:
        return f"n{ai}" if k == 0 else f"e{ai}_{k - 1}"

    refs = [f"v{gao.index(v)}" for v in variables]
    yield_expr = "(" + ", ".join(refs) + ("," if len(refs) == 1 else "") + ")"

    def emit_level(level: int, ind: str) -> None:
        parts = parts_by_level[level]
        for ai, k in parts:
            w(f"{ind}p{ai}_{k} = {lo(ai, k)}")
        cond = " and ".join(f"p{ai}_{k} < {hi(ai, k)}" for ai, k in parts)
        w(f"{ind}while {cond}:")
        body = ind + "    "
        a0, k0 = parts[0]
        w(f"{body}v{level} = c{a0}_{k0}[p{a0}_{k0}]")
        if len(parts) == 1:
            emit_runs_and_inner(level, parts, body)
        else:
            for j, (ai, k) in enumerate(parts[1:], start=1):
                w(f"{body}t{level}_{j} = c{ai}_{k}[p{ai}_{k}]")
            aligned = " == ".join(
                [f"v{level}"]
                + [f"t{level}_{j}" for j in range(1, len(parts))]
            )
            w(f"{body}if {aligned}:")
            emit_runs_and_inner(level, parts, body + "    ")
            w(f"{body}else:")
            alt = body + "    "
            # m = max over participants; everyone strictly below seeks.
            w(f"{alt}m = v{level}")
            for j in range(1, len(parts)):
                w(f"{alt}if t{level}_{j} > m:")
                w(f"{alt}    m = t{level}_{j}")
            for j, (ai, k) in enumerate(parts):
                val = f"v{level}" if j == 0 else f"t{level}_{j}"
                w(f"{alt}if {val} < m:")
                w(
                    f"{alt}    p{ai}_{k} = seek(c{ai}_{k}, p{ai}_{k}, "
                    f"{hi(ai, k)}, m)"
                )

    def emit_runs_and_inner(
        level: int, parts: List[Tuple[int, int]], ind: str
    ) -> None:
        # Narrow each participant to its run of v (run-length-1 fast
        # path: keys are near-unique in practice, skip the gallop).
        for ai, k in parts:
            w(f"{ind}e{ai}_{k} = p{ai}_{k} + 1")
            w(
                f"{ind}if e{ai}_{k} < {hi(ai, k)} and "
                f"c{ai}_{k}[e{ai}_{k}] == v{level}:"
            )
            w(
                f"{ind}    e{ai}_{k} = seek(c{ai}_{k}, e{ai}_{k}, "
                f"{hi(ai, k)}, v{level} + 1)"
            )
        if level + 1 == n:
            w(f"{ind}yield {yield_expr}")
        else:
            emit_level(level + 1, ind)
        for ai, k in parts:
            w(f"{ind}p{ai}_{k} = e{ai}_{k}")

    emit_level(0, "    ")
    return "\n".join(lines) + "\n"


def leapfrog_kernel(query, gao: Tuple[str, ...]) -> Optional[Callable]:
    """The compiled leapfrog kernel for ``(query, gao)``, or ``None``.

    Keyed by the atoms' names *and* attribute tuples plus the GAO and
    output variable order — renaming an attribute is a different kernel.
    """
    key = (
        gao,
        query.variables,
        tuple((a.name, a.attrs) for a in query.atoms),
    )

    def build() -> Optional[Callable]:
        source = _leapfrog_source(
            [(a.name, a.attrs) for a in query.atoms], gao, query.variables
        )
        if source is None:
            return None
        return _compile(source, {"_seek": _seek})

    return _LEAPFROG_CACHE.lookup(key, build)


# -- hash -----------------------------------------------------------------------


def _tuple_expr(items: Sequence[str]) -> str:
    return "(" + ", ".join(items) + ("," if len(items) == 1 else "") + ")"


def _hash_source(
    atom_specs: Sequence[Tuple[str, Tuple[str, ...]]],
    variables: Tuple[str, ...],
) -> str:
    """Generate the probe-cascade kernel for one ordered left-deep plan.

    ``kernel(rels)`` takes the per-atom row lists in plan order, builds
    each stage's table inline (scalar-keyed when the join key is one
    attribute), and yields the projected output rows — the same stream,
    in the same order, as the interpreted pipeline.
    """
    first_attrs = list(atom_specs[0][1])
    acc = list(first_attrs)
    # acc position -> (stage level, index into that stage's tuple).
    src_of: List[Tuple[int, int]] = [
        (0, j) for j in range(len(first_attrs))
    ]
    lines: List[str] = ["def kernel(rels):"]
    w = lines.append
    w("    E = ()")
    probe_loops: List[str] = []  # one loop header per stage, in order
    for s, (_name, attrs) in enumerate(atom_specs[1:], start=1):
        right = list(attrs)
        common = [a for a in acc if a in right]
        new = [a for a in right if a not in acc]
        rpos_common = [right.index(a) for a in common]
        rpos_new = [right.index(a) for a in new]
        key_srcs = [src_of[acc.index(a)] for a in common]
        val_expr = _tuple_expr([f"r[{i}]" for i in rpos_new])
        if common:
            if len(rpos_common) == 1:
                rkey = f"r[{rpos_common[0]}]"
                lkey = f"x{key_srcs[0][0]}[{key_srcs[0][1]}]"
            else:
                rkey = _tuple_expr([f"r[{i}]" for i in rpos_common])
                lkey = _tuple_expr(
                    [f"x{lvl}[{idx}]" for lvl, idx in key_srcs]
                )
            w(f"    t{s} = {{}}")
            w(f"    for r in rels[{s}]:")
            w(f"        k = {rkey}")
            w(f"        l = t{s}.get(k)")
            w("        if l is None:")
            w(f"            t{s}[k] = [{val_expr}]")
            w("        else:")
            w(f"            l.append({val_expr})")
            w(f"    g{s} = t{s}.get")
            probe_loops.append(f"for x{s} in g{s}({lkey}, E):")
        else:
            # Disconnected hypergraph: a genuine cross-product stage.
            w(f"    a{s} = [{val_expr} for r in rels[{s}]]")
            probe_loops.append(f"for x{s} in a{s}:")
        acc.extend(new)
        src_of.extend((s, j) for j in range(len(new)))
    out_refs = []
    for v in variables:
        lvl, idx = src_of[acc.index(v)]
        out_refs.append(f"x{lvl}[{idx}]")
    ind = "    "
    w(f"{ind}for x0 in rels[0]:")
    ind += "    "
    for loop in probe_loops:
        w(ind + loop)
        ind += "    "
    w(ind + "yield " + _tuple_expr(out_refs))
    return "\n".join(lines) + "\n"


def hash_kernel(
    atom_specs: Sequence[Tuple[str, Tuple[str, ...]]],
    variables: Tuple[str, ...],
) -> Optional[Callable]:
    """The compiled hash-cascade kernel for one ordered plan, or ``None``.

    ``atom_specs`` is the plan-ordered ``(name, attrs)`` sequence; the
    key carries names and attributes, so renamed schemas never collide.
    """
    key = (tuple((n, tuple(a)) for n, a in atom_specs), tuple(variables))

    def build() -> Optional[Callable]:
        return _compile(_hash_source(atom_specs, tuple(variables)), {})

    return _HASH_CACHE.lookup(key, build)


# -- tetris ---------------------------------------------------------------------


def _tetris_source(
    n: int,
    depth: int,
    sao: Tuple[int, ...],
    fetch: bool,
    capped: bool,
    cache_resolvents: bool,
    has_frontier: bool,
    has_pinned: bool,
    versioned: bool,
    has_shallowest: bool,
) -> str:
    """Generate the specialized frontier-resuming loop.

    A literal transcription of
    :meth:`~repro.core.tetris.TetrisEngine._run_resuming` with every
    mode branch resolved at generation time: ``ndim``/``depth``/the unit
    marker are literals, the box split is unrolled per axis, SAO
    translation (oracle probes, output emission) is folded into literal
    index tuples, stats counters are locals flushed once in ``finally``,
    and no per-leaf result tuple is ever allocated.  ``fetch`` is the
    on-demand (Reloaded) discipline — corner probing and sibling
    prefetch included; without it an uncovered leaf is an output by
    construction (preloaded runs, or no oracle at all).
    """
    unit = 1 << depth
    depth_bits = depth + 1
    identity = sao == tuple(range(n))
    inv = [0] * n
    for pos, dim in enumerate(sao):
        inv[dim] = pos

    def tup(f) -> str:
        items = [f(i) for i in range(n)]
        return "(" + ", ".join(items) + ("," if n == 1 else "") + ")"

    universe = tup(lambda i: "1")
    emit_b = tup(
        lambda i: f"b[{i}] ^ {unit}"
        if identity
        else f"b[{inv[i]}] ^ {unit}"
    )
    emit_corner = tup(
        lambda i: f"corner[{i}] ^ {unit}"
        if identity
        else f"corner[{inv[i]}] ^ {unit}"
    )

    def to_ext(var: str) -> str:
        return tup(lambda i: f"{var}[{inv[i]}]")

    def to_int(var: str) -> str:
        return tup(lambda i: f"{var}[{sao[i]}]")

    def witness_depth(var: str) -> str:
        return (
            " + ".join(f"{var}[{i}].bit_length()" for i in range(n))
            + f" - {n}"
        )

    lines: List[str] = ["def kernel(engine, oracle, max_outputs):"]

    def w(indent: int, text: str = "") -> None:
        lines.append("    " * indent + text if text else "")

    w(1, "kb = engine.knowledge_base")
    w(1, "stats = engine.stats")
    w(1, "kb_add = kb.add")
    w(1, "record = stats.record")
    if has_frontier:
        w(1, "frontier = kb.attach_frontier()")
        w(1, "probe = frontier.sync_and_probe")
    else:
        w(1, "find_container = kb.find_container")
        if has_pinned:
            w(1, "find_pinned = kb.find_container_pinned")
    if fetch:
        w(1, "oracle_containing = oracle.containing")
        w(1, "oracle_many = oracle.containing_many")
        if has_shallowest:
            w(1, "find_shallowest = kb.find_shallowest_container")
        w(1, "prefetch_key = None")
        w(1, "prefetch_boxes = []")
        w(1, "corner = None")
        w(1, "corner_covered = False")
    w(1, "outputs = []")
    w(1, "out_append = outputs.append")
    w(1, "cq = hits = resumes = loaded = wdepth = oq = 0")
    w(1, "stats.skeleton_calls += 1")
    w(1, "stack = []")
    w(1, f"current = {universe}")
    w(1, f"cursor = {n if depth == 0 else 0}")
    w(1, "pinned = None")
    w(1, "res_w = current")
    w(1, "try:")
    w(2, "while True:")
    w(3, "if current is not None:")
    w(4, "b = current")
    w(4, "cq += 1")
    if has_frontier:
        w(4, "witness = probe(b, cursor, pinned)")
    elif has_pinned:
        w(4, "if pinned is None:")
        w(5, "witness = find_container(b)")
        w(4, "else:")
        w(5, "witness = find_pinned(b, pinned)")
    else:
        w(4, "witness = find_container(b)")
    w(4, "if witness is not None:")
    w(5, "hits += 1")
    w(5, "res_w = witness")
    w(5, "current = None")
    w(5, "continue")
    w(4, f"if cursor == {n}:")
    w(5, "resumes += 1")
    if not fetch:
        # Preloaded runs (or no oracle): an uncovered leaf is an output
        # by construction — the oracle has nothing left to add.
        w(5, "gap_boxes = ()")
    else:
        w(5, "if prefetch_key == b:")
        w(6, "gap_boxes = prefetch_boxes")
        w(6, "prefetch_key = None")
        w(5, "else:")
        w(6, "sibling = None")
        w(6, "if stack:")
        w(7, "frame = stack[-1]")
        w(7, "if frame[4] == 0:")
        w(8, "sibling = frame[1]")
        w(6, "if sibling is not None:")
        w(7, "oq += 2")
        if identity:
            w(7, "found = oracle_many((b, sibling))")
            w(7, "gap_boxes = found[0]")
            w(7, "prefetch_boxes = found[1]")
        else:
            w(7, f"found = oracle_many(({to_ext('b')}, "
                 f"{to_ext('sibling')}))")
            w(7, f"gap_boxes = [{to_int('g')} for g in found[0]]")
            w(7, f"prefetch_boxes = [{to_int('g')} for g in found[1]]")
        w(7, "prefetch_key = sibling")
        w(6, "else:")
        w(7, "oq += 1")
        if identity:
            w(7, "gap_boxes = oracle_containing(b)")
        else:
            w(7, f"gap_boxes = [{to_int('g')} for g in "
                 f"oracle_containing({to_ext('b')})]")
    w(5, "if gap_boxes:")
    w(6, "for box in gap_boxes:")
    w(7, "if kb_add(box):")
    w(8, "loaded += 1")
    if has_shallowest and fetch:
        w(6, "witness = find_shallowest(b)")
        w(6, "if witness is None:")
        w(7, "witness = gap_boxes[0]")
    else:
        w(6, "witness = gap_boxes[0]")
    w(6, f"wdepth += {witness_depth('witness')}")
    w(6, "res_w = witness")
    w(5, "else:")
    w(6, f"out_append({emit_b})")
    if capped:
        w(6, "if max_outputs is not None and "
             "len(outputs) >= max_outputs:")
        w(7, "return outputs")
    w(6, "kb_add(b)")
    w(6, "loaded += 1")
    w(6, "res_w = b")
    w(5, "current = None")
    w(5, "continue")
    if fetch:
        # Corner probing: the 0-half descent chain below b converges to
        # b's corner; probe it now so gap boxes land at the boundary.
        w(4, "if corner is None:")
        w(5, f"corner = {tup(lambda i: f'b[{i}] << ({depth_bits} - b[{i}].bit_length())')}")
        w(5, "corner_covered = False")
        w(4, "if not corner_covered:")
        w(5, "cq += 1")
        if has_frontier:
            w(5, "covered = probe(corner, cursor)")
        else:
            w(5, "covered = find_container(corner)")
        w(5, "if covered is not None:")
        w(6, "corner_covered = True")
        w(5, "else:")
        w(6, "oq += 1")
        if identity:
            w(6, "gap_boxes = oracle_containing(corner)")
        else:
            w(6, f"gap_boxes = [{to_int('g')} for g in "
                 f"oracle_containing({to_ext('corner')})]")
        w(6, "corner_covered = True")
        w(6, "if gap_boxes:")
        w(7, "for box in gap_boxes:")
        w(8, "if kb_add(box):")
        w(9, "loaded += 1")
        w(7, "witness = None")
        w(7, "for box in gap_boxes:")
        w(8, "if box_contains(box, b):")
        w(9, "witness = box")
        w(9, "break")
        w(7, "if witness is not None:")
        w(8, "resumes += 1")
        w(8, f"wdepth += {witness_depth('witness')}")
        w(8, "res_w = witness")
        w(8, "current = None")
        w(8, "continue")
        w(6, "else:")
        w(7, f"out_append({emit_corner})")
        if capped:
            w(7, "if max_outputs is not None and "
                 "len(outputs) >= max_outputs:")
            w(8, "return outputs")
        w(7, "kb_add(corner)")
        w(7, "loaded += 1")
    # Split at the cursor axis, unrolled per ndim.
    w(4, "half = b[cursor] << 1")
    for axis in range(n):
        head = "if" if axis == 0 else "elif"
        cond = f"{head} cursor == {axis}:" if n > 1 else "if cursor == 0:"
        w(4, cond)
        b1 = tup(lambda i, a=axis: "half" if i == a else f"b[{i}]")
        b2 = tup(lambda i, a=axis: "half | 1" if i == a else f"b[{i}]")
        w(5, f"b1 = {b1}")
        w(5, f"b2 = {b2}")
    w(4, "child_cursor = cursor")
    w(4, f"if half >= {unit}:")
    w(5, "child_cursor = cursor + 1")
    w(5, f"while child_cursor < {n} and b[child_cursor] >= {unit}:")
    w(6, "child_cursor += 1")
    ver = "kb.version" if versioned else "None"
    w(4, f"stack.append([b, b2, cursor, None, 0, child_cursor, {ver}])")
    w(4, "current = b1")
    w(4, "pinned = cursor")
    w(4, "cursor = child_cursor")
    w(4, "continue")
    w(3, "if not stack:")
    w(4, "return outputs")
    # The covering pop is the hot unwind path; it needs only frame[0],
    # so the full 7-slot unpack is deferred until the frame survives.
    w(3, "frame = stack[-1]")
    w(3, "witness = res_w")
    w(3, "if box_contains(witness, frame[0]):")
    w(4, "stack.pop()")
    w(4, "continue")
    w(3, "b, b2, axis, w1, stage, child_cursor, ver = frame")
    w(3, "if stage == 0:")
    w(4, "frame[3] = witness")
    w(4, "frame[4] = 1")
    w(4, "current = b2")
    w(4, "cursor = child_cursor")
    if versioned:
        w(4, "pinned = axis if ver == kb.version else None")
    else:
        w(4, "pinned = None")
    if fetch:
        w(4, "corner = None")
    w(4, "continue")
    w(3, "meet = list(map(max, w1, witness))")
    w(3, "meet[axis] = w1[axis] >> 1")
    w(3, "resolvent = tuple(meet)")
    w(3, "record(axis, is_ordered_pair(w1, witness, axis))")
    if cache_resolvents:
        w(3, "if resolvent != b:")
        w(4, "kb_add(resolvent)")
    w(3, "stack.pop()")
    w(3, "res_w = resolvent")
    w(1, "finally:")
    w(2, "stats.containment_queries += cq")
    w(2, "stats.cache_hits += hits")
    w(2, "stats.resumes += resumes")
    w(2, "stats.boxes_loaded += loaded")
    w(2, "stats.witness_depth_sum += wdepth")
    w(2, "stats.oracle_queries += oq")
    return "\n".join(lines) + "\n"


def tetris_kernel(
    engine,
    oracle,
    on_demand: bool,
    trust_kb: bool,
    capped: bool,
) -> Optional[Callable]:
    """The compiled resume-mode kernel for one engine configuration.

    Returns ``None`` for shapes the generator does not cover —
    generalized dimension specs, tracing resolvers, bounded resolvent
    admission, ``return_boxes`` output, oracles without a batched walk,
    or ``ndim`` past the unroll cap — and the caller runs the
    interpreted :meth:`~repro.core.tetris.TetrisEngine._run_resuming`.
    """
    if engine.dims is not None:
        return None
    if engine.resolvent_limit is not None:
        return None
    if type(engine._resolver) is not Resolver:
        return None
    if engine._return_boxes:
        return None
    if not 1 <= engine.ndim <= _TETRIS_NDIM_CAP:
        return None
    # Preloaded runs never consult the oracle at a leaf; on-demand runs
    # need the batched containing_many walk the generator binds.
    fetch = on_demand and oracle is not None
    if not fetch and not trust_kb and oracle is not None:
        return None  # interpreted fallback for exotic flag combinations
    if fetch and (
        getattr(oracle, "containing", None) is None
        or getattr(oracle, "containing_many", None) is None
    ):
        return None
    kb = engine.knowledge_base
    has_frontier = hasattr(kb, "attach_frontier")
    has_pinned = getattr(kb, "find_container_pinned", None) is not None
    versioned = hasattr(kb, "version")
    has_shallowest = (
        getattr(kb, "find_shallowest_container", None) is not None
    )
    key = (
        engine.ndim,
        engine.depth,
        engine.sao,
        fetch,
        capped,
        engine.cache_resolvents,
        has_frontier,
        has_pinned,
        versioned,
        has_shallowest,
    )

    def build() -> Optional[Callable]:
        source = _tetris_source(
            engine.ndim,
            engine.depth,
            engine.sao,
            fetch,
            capped,
            engine.cache_resolvents,
            has_frontier,
            has_pinned,
            versioned,
            has_shallowest,
        )
        return _compile(
            source,
            {
                "box_contains": box_contains,
                "is_ordered_pair": is_ordered_pair,
            },
        )

    return _TETRIS_CACHE.lookup(key, build)
