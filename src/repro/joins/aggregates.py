"""Boolean, counting and grouping aggregates over join results.

Two layers:

* **Tetris-native** — ``join_exists`` answers the Boolean join ("is the
  output non-empty?") by running Tetris with an output cap of one — the
  engine stops at the first uncovered point, so an early witness exits
  without enumerating Z tuples.  ``join_count`` counts output tuples;
  with Tetris this is free model counting (the same mechanism as #SAT in
  :mod:`repro.sat`).  Both ride the packed gap-box pipeline of
  :mod:`repro.joins.tetris_join` end to end.
* **Cursor-consuming** — ``count_rows`` / ``any_rows`` / ``group_counts``
  work over *any* engine backend by draining a streaming
  :class:`~repro.engine.executor.ResultCursor`: the aggregate itself
  holds O(1) state (O(groups) for the group-by) and never collects the
  result set.  What the *backend* buffers is its own affair — the
  pipeline backends buffer only base-relation hash tables, while the
  Tetris backends materialize their output inside the engine before the
  cursor streams it (``any_rows`` caps that via ``limit=1``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.resolution import ResolutionStats
from repro.core.tetris import TetrisEngine
from repro.joins.tetris_join import make_oracle
from repro.relational.query import Database, JoinQuery


def _engine_for(
    query: JoinQuery,
    db: Database,
    index_kind: str,
    gao: Optional[Sequence[str]],
    stats: Optional[ResolutionStats],
):
    oracle, gao = make_oracle(query, db, index_kind=index_kind, gao=gao)
    attrs = oracle.attrs
    sao = tuple(attrs.index(a) for a in gao)
    engine = TetrisEngine(
        len(attrs), db.domain.depth, sao=sao, stats=stats
    )
    return engine, oracle


def join_exists(
    query: JoinQuery,
    db: Database,
    index_kind: str = "btree",
    gao: Optional[Sequence[str]] = None,
    stats: Optional[ResolutionStats] = None,
) -> bool:
    """Boolean join: True iff the join output is non-empty.

    Equivalent to the Boolean BCP (Definition 3.5) being *uncovered*;
    stops at the first output tuple found.
    """
    engine, oracle = _engine_for(query, db, index_kind, gao, stats)
    found = engine.run(oracle, preload=True, max_outputs=1)
    return bool(found)


def join_count(
    query: JoinQuery,
    db: Database,
    index_kind: str = "btree",
    gao: Optional[Sequence[str]] = None,
    stats: Optional[ResolutionStats] = None,
) -> int:
    """Number of output tuples of the join (full enumeration count)."""
    engine, oracle = _engine_for(query, db, index_kind, gao, stats)
    return len(engine.run(oracle, preload=True))


def count_rows(
    query: JoinQuery,
    db: Database,
    algorithm: str = "auto",
    **execute_kwargs,
) -> int:
    """Output cardinality via a streaming cursor.

    Works over any registered backend; rows are counted as they stream
    off the cursor, never collected — the count itself is O(1) state on
    top of whatever the chosen backend buffers internally.
    """
    from repro.engine.executor import execute_cursor

    cursor = execute_cursor(query, db, algorithm=algorithm,
                            **execute_kwargs)
    count = 0
    for _ in cursor:
        count += 1
    return count


def any_rows(
    query: JoinQuery,
    db: Database,
    algorithm: str = "auto",
    **execute_kwargs,
) -> bool:
    """Boolean join over any backend: early-terminates after one row."""
    from repro.engine.executor import execute_cursor

    execute_kwargs.pop("limit", None)  # existence needs exactly one row
    cursor = execute_cursor(
        query, db, algorithm=algorithm, limit=1, **execute_kwargs
    )
    for _ in cursor:
        return True
    return False


def group_counts(
    query: JoinQuery,
    db: Database,
    by: Sequence[str],
    algorithm: str = "auto",
    **execute_kwargs,
) -> Dict[Tuple[int, ...], int]:
    """COUNT(*) grouped by a subset of the query's variables.

    Streams the cursor once; the aggregate's own state is O(distinct
    groups), never O(output).
    """
    from repro.engine.executor import execute_cursor

    positions = []
    for attr in by:
        if attr not in query.variables:
            raise ValueError(
                f"{attr!r} is not a variable of {query}"
            )
        positions.append(query.variables.index(attr))
    cursor = execute_cursor(query, db, algorithm=algorithm,
                            **execute_kwargs)
    counts: Dict[Tuple[int, ...], int] = {}
    for row in cursor:
        key = tuple(row[i] for i in positions)
        counts[key] = counts.get(key, 0) + 1
    return counts


def triangle_count(db: Database) -> int:
    """Undirected triangles of a symmetric edge relation database.

    Expects the triangle query's relations R, S, T to hold the same
    symmetrized edge set; each undirected triangle appears as six ordered
    embeddings.
    """
    from repro.relational.query import triangle_query

    ordered = join_count(triangle_query(), db)
    if ordered % 6 != 0:
        raise ValueError(
            "ordered embedding count not divisible by 6 — is the edge "
            "relation symmetric and loop-free?"
        )
    return ordered // 6
