"""Boolean and counting joins on top of the Tetris engine.

``join_exists`` answers the Boolean join ("is the output non-empty?") by
running Tetris with an output cap of one — the engine stops at the first
uncovered point, so an early witness exits without enumerating Z tuples.
``join_count`` counts output tuples; with Tetris this is free model
counting (the same mechanism as #SAT in :mod:`repro.sat`).  Both ride
the packed gap-box pipeline of :mod:`repro.joins.tetris_join` end to end.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.resolution import ResolutionStats
from repro.core.tetris import TetrisEngine
from repro.joins.tetris_join import make_oracle
from repro.relational.query import Database, JoinQuery


def _engine_for(
    query: JoinQuery,
    db: Database,
    index_kind: str,
    gao: Optional[Sequence[str]],
    stats: Optional[ResolutionStats],
):
    oracle, gao = make_oracle(query, db, index_kind=index_kind, gao=gao)
    attrs = oracle.attrs
    sao = tuple(attrs.index(a) for a in gao)
    engine = TetrisEngine(
        len(attrs), db.domain.depth, sao=sao, stats=stats
    )
    return engine, oracle


def join_exists(
    query: JoinQuery,
    db: Database,
    index_kind: str = "btree",
    gao: Optional[Sequence[str]] = None,
    stats: Optional[ResolutionStats] = None,
) -> bool:
    """Boolean join: True iff the join output is non-empty.

    Equivalent to the Boolean BCP (Definition 3.5) being *uncovered*;
    stops at the first output tuple found.
    """
    engine, oracle = _engine_for(query, db, index_kind, gao, stats)
    found = engine.run(oracle, preload=True, one_pass=True, max_outputs=1)
    return bool(found)


def join_count(
    query: JoinQuery,
    db: Database,
    index_kind: str = "btree",
    gao: Optional[Sequence[str]] = None,
    stats: Optional[ResolutionStats] = None,
) -> int:
    """Number of output tuples of the join (full enumeration count)."""
    engine, oracle = _engine_for(query, db, index_kind, gao, stats)
    return len(engine.run(oracle, preload=True, one_pass=True))


def triangle_count(db: Database) -> int:
    """Undirected triangles of a symmetric edge relation database.

    Expects the triangle query's relations R, S, T to hold the same
    symmetrized edge set; each undirected triangle appears as six ordered
    embeddings.
    """
    from repro.relational.query import triangle_query

    ordered = join_count(triangle_query(), db)
    if ordered % 6 != 0:
        raise ValueError(
            "ordered embedding count not divisible by 6 — is the edge "
            "relation symmetric and loop-free?"
        )
    return ordered // 6
