"""Shared machinery for lazy hash-probe join pipelines.

Both the left-deep binary hash join and Yannakakis' phase-3 fold stream
their output through the same shape of stage: hash the right side on the
attributes it shares with the accumulated layout, then probe with each
streamed left tuple.  :func:`hash_stage` builds one stage's table and
bookkeeping, :func:`probe` is the generator that streams through it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

Stage = Tuple[Dict[tuple, List[tuple]], List[int], List[str]]


def hash_stage(
    acc_attrs: Sequence[str],
    right_attrs: Sequence[str],
    right_rows: Iterable[tuple],
) -> Stage:
    """Build one probe stage against an accumulated attribute layout.

    Returns ``(table, lpos_common, new_attrs)``: the right side hashed on
    the shared attributes (values carry only the new attributes), the
    accumulated-side positions of the shared key, and the attributes the
    stage appends.
    """
    right_attrs = list(right_attrs)
    common = [a for a in acc_attrs if a in right_attrs]
    new_attrs = [a for a in right_attrs if a not in acc_attrs]
    rpos_common = [right_attrs.index(a) for a in common]
    rpos_new = [right_attrs.index(a) for a in new_attrs]
    lpos_common = [list(acc_attrs).index(a) for a in common]
    table: Dict[tuple, List[tuple]] = {}
    for t in right_rows:
        key = tuple(t[i] for i in rpos_common)
        table.setdefault(key, []).append(tuple(t[i] for i in rpos_new))
    return table, lpos_common, new_attrs


def probe(
    stream: Iterator[tuple],
    table: Dict[tuple, List[tuple]],
    lpos_common: Sequence[int],
) -> Iterator[tuple]:
    """One lazy pipeline stage: stream left tuples through a built table."""
    for t in stream:
        key = tuple(t[i] for i in lpos_common)
        for ext in table.get(key, ()):
            yield t + ext
