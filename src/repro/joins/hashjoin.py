"""Binary hash-join plans — the traditional pairwise-join baseline.

Evaluates the query as a left-deep sequence of binary hash joins in a
given (or size-ascending) atom order.  On cyclic queries this is the
algorithm the AGM line of work beats: intermediate results can blow up to
Θ(N²) on triangle instances whose output is far smaller.

:func:`iter_hash` runs the plan as a **lazy generator pipeline**: every
probe side streams, only the per-stage hash tables (built from base
relations, O(N) total) are materialized — intermediate results never
are, so taking k rows does O(k)-ish probe work beyond the table builds.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.joins.pipeline import hash_stage, probe
from repro.relational.query import Database, JoinQuery


def _plan_order(
    query: JoinQuery, db: Database, atom_order: Optional[Sequence[str]]
) -> List[str]:
    """Default join order: size-ascending, but connectivity-aware.

    Start from the smallest atom, then repeatedly take the smallest
    atom sharing an attribute with what's joined so far — a pure
    size sort can interleave disconnected atoms and silently insert a
    cross-product stage (clipped shard databases, where relative sizes
    shift, hit this hard).  A cross product only happens when the query
    hypergraph itself is disconnected.
    """
    if atom_order is not None:
        if sorted(atom_order) != sorted(a.name for a in query.atoms):
            raise ValueError(f"{atom_order} does not enumerate the atoms")
        return list(atom_order)
    remaining = {a.name: set(a.attrs) for a in query.atoms}
    first = min(remaining, key=lambda n: (len(db[n]), n))
    order = [first]
    bound = set(remaining.pop(first))
    while remaining:
        connected = [n for n, attrs in remaining.items() if attrs & bound]
        pool = connected if connected else list(remaining)
        nxt = min(pool, key=lambda n: (len(db[n]), n))
        order.append(nxt)
        bound |= remaining.pop(nxt)
    return order


def iter_hash(
    query: JoinQuery,
    db: Database,
    atom_order: Optional[Sequence[str]] = None,
    compiled: Optional[bool] = None,
) -> Iterator[Tuple[int, ...]]:
    """Stream the left-deep plan's output lazily (unsorted).

    Hash tables for every non-leading atom are built up front (they hash
    base relations, never intermediates); the probe cascade then streams,
    so no intermediate result is ever materialized.  By default the
    whole cascade — table builds included — runs as one compiled kernel
    (:func:`repro.engine.codegen.hash_kernel`) with scalar join keys and
    constant-folded projections; ``compiled=False`` forces the
    interpreted generator pipeline, the semantic reference.
    """
    order = _plan_order(query, db, atom_order)
    if compiled is not False:
        from repro.engine.codegen import hash_kernel

        specs = [
            (name, query.atom(name).attrs) for name in order
        ]
        kernel = hash_kernel(specs, query.variables)
        if kernel is not None:
            rels = [db[name].rows() for name in order]
            yield from kernel(rels)
            return
    first = query.atom(order[0])
    acc_attrs: List[str] = list(first.attrs)
    stream: Iterator[tuple] = iter(db[first.name].rows())
    for name in order[1:]:
        atom = query.atom(name)
        table, lpos_common, new_attrs = hash_stage(
            acc_attrs, atom.attrs, db[name]
        )
        stream = probe(stream, table, lpos_common)
        acc_attrs = acc_attrs + new_attrs
    positions = [acc_attrs.index(v) for v in query.variables]
    for t in stream:
        yield tuple(t[i] for i in positions)


def join_hash(
    query: JoinQuery,
    db: Database,
    atom_order: Optional[Sequence[str]] = None,
    compiled: Optional[bool] = None,
) -> List[Tuple[int, ...]]:
    """Left-deep binary hash-join plan; outputs follow query.variables.

    ``atom_order`` names atoms in join order; defaults to the
    connectivity-aware size-ascending heuristic of :func:`_plan_order`.
    Materialized and sorted; :func:`iter_hash` is the streaming form.
    """
    return sorted(
        set(iter_hash(query, db, atom_order=atom_order, compiled=compiled))
    )


def intermediate_sizes(
    query: JoinQuery,
    db: Database,
    atom_order: Optional[Sequence[str]] = None,
) -> List[int]:
    """Sizes of every intermediate result of the left-deep plan.

    Used by the crossover benchmarks to show the Θ(N²) blowups that
    worst-case-optimal joins avoid.  Defaults to the same order
    :func:`join_hash` executes, so the reported sizes are the real
    plan's.
    """
    if atom_order is None:
        atom_order = _plan_order(query, db, None)
    sizes = []
    sub_atoms = []
    for name in atom_order:
        sub_atoms.append(query.atom(name))
        sub_query = JoinQuery(sub_atoms)
        sizes.append(len(join_hash(sub_query, db, atom_order=[
            a.name for a in sub_atoms
        ])))
    return sizes
