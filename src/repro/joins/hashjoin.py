"""Binary hash-join plans — the traditional pairwise-join baseline.

Evaluates the query as a left-deep sequence of binary hash joins in a
given (or size-ascending) atom order.  On cyclic queries this is the
algorithm the AGM line of work beats: intermediate results can blow up to
Θ(N²) on triangle instances whose output is far smaller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.relational.query import Database, JoinQuery


def join_hash(
    query: JoinQuery,
    db: Database,
    atom_order: Optional[Sequence[str]] = None,
) -> List[Tuple[int, ...]]:
    """Left-deep binary hash-join plan; outputs follow query.variables.

    ``atom_order`` names atoms in join order; defaults to ascending
    relation size (a common heuristic).
    """
    if atom_order is None:
        atom_order = sorted(
            (a.name for a in query.atoms), key=lambda n: len(db[n])
        )
    if sorted(atom_order) != sorted(a.name for a in query.atoms):
        raise ValueError(f"{atom_order} does not enumerate the atoms")

    first = query.atom(atom_order[0])
    acc: List[tuple] = [tuple(t) for t in db[first.name]]
    acc_attrs: List[str] = list(first.attrs)
    for name in atom_order[1:]:
        atom = query.atom(name)
        right_attrs = list(atom.attrs)
        common = [a for a in acc_attrs if a in right_attrs]
        new_attrs = [a for a in right_attrs if a not in acc_attrs]
        rpos_common = [right_attrs.index(a) for a in common]
        rpos_new = [right_attrs.index(a) for a in new_attrs]
        lpos_common = [acc_attrs.index(a) for a in common]
        table: Dict[tuple, List[tuple]] = {}
        for t in db[name]:
            key = tuple(t[i] for i in rpos_common)
            table.setdefault(key, []).append(
                tuple(t[i] for i in rpos_new)
            )
        joined: List[tuple] = []
        for t in acc:
            key = tuple(t[i] for i in lpos_common)
            for ext in table.get(key, ()):
                joined.append(t + ext)
        acc = joined
        acc_attrs = acc_attrs + new_attrs
    positions = [acc_attrs.index(v) for v in query.variables]
    return sorted({tuple(t[i] for i in positions) for t in acc})


def intermediate_sizes(
    query: JoinQuery,
    db: Database,
    atom_order: Optional[Sequence[str]] = None,
) -> List[int]:
    """Sizes of every intermediate result of the left-deep plan.

    Used by the crossover benchmarks to show the Θ(N²) blowups that
    worst-case-optimal joins avoid.
    """
    if atom_order is None:
        atom_order = sorted(
            (a.name for a in query.atoms), key=lambda n: len(db[n])
        )
    sizes = []
    sub_atoms = []
    for name in atom_order:
        sub_atoms.append(query.atom(name))
        sub_query = JoinQuery(sub_atoms)
        sizes.append(len(join_hash(sub_query, db, atom_order=[
            a.name for a in sub_atoms
        ])))
    return sizes
