"""Block-nested-loop join — the simplest (and slowest) baseline.

Iterates the tuples of the first atom and extends bindings atom by atom,
checking compatibility eagerly.  Exponential in the worst case; included
as the sanity-check floor for the benchmark suite.  :func:`iter_nested_loop`
streams rows lazily — it was always a generator at heart.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.relational.query import Database, JoinQuery


def iter_nested_loop(
    query: JoinQuery, db: Database
) -> Iterator[Tuple[int, ...]]:
    """Stream the join output lazily (unsorted, duplicate-free).

    Relations are sets, so every completed binding is produced exactly
    once: each atom either pins its row uniquely (all attrs bound) or
    contributes fresh attrs that distinguish the extensions.
    """
    variables = query.variables

    def extend(atom_index: int, binding: Dict[str, int]):
        if atom_index == len(query.atoms):
            yield tuple(binding[v] for v in variables)
            return
        atom = query.atoms[atom_index]
        for row in db[atom.name]:
            merged = dict(binding)
            ok = True
            for attr, value in zip(atom.attrs, row):
                if merged.get(attr, value) != value:
                    ok = False
                    break
                merged[attr] = value
            if ok:
                yield from extend(atom_index + 1, merged)

    yield from extend(0, {})


def join_nested_loop(
    query: JoinQuery, db: Database
) -> List[Tuple[int, ...]]:
    """Evaluate a join by nested iteration; outputs follow query.variables.

    Materialized and sorted; :func:`iter_nested_loop` is the streaming
    form.
    """
    return sorted(set(iter_nested_loop(query, db)))
