"""Block-nested-loop join — the simplest (and slowest) baseline.

Iterates the tuples of the first atom and extends bindings atom by atom,
checking compatibility eagerly.  Exponential in the worst case; included
as the sanity-check floor for the benchmark suite.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.relational.query import Database, JoinQuery


def join_nested_loop(
    query: JoinQuery, db: Database
) -> List[Tuple[int, ...]]:
    """Evaluate a join by nested iteration; outputs follow query.variables."""
    variables = query.variables

    def extend(atom_index: int, binding: Dict[str, int]):
        if atom_index == len(query.atoms):
            yield tuple(binding[v] for v in variables)
            return
        atom = query.atoms[atom_index]
        for row in db[atom.name]:
            merged = dict(binding)
            ok = True
            for attr, value in zip(atom.attrs, row):
                if merged.get(attr, value) != value:
                    ok = False
                    break
                merged[attr] = value
            if ok:
                yield from extend(atom_index + 1, merged)

    return sorted(set(extend(0, {})))
