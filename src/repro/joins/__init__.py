"""Join algorithms: Tetris plus the paper's comparator baselines."""

from repro.joins.aggregates import join_count, join_exists, triangle_count
from repro.joins.hashjoin import join_hash
from repro.joins.leapfrog import join_leapfrog
from repro.joins.nested_loop import join_nested_loop
from repro.joins.tetris_join import JoinResult, join_tetris, make_oracle
from repro.joins.yannakakis import build_join_tree, join_yannakakis

__all__ = [
    "JoinResult",
    "build_join_tree",
    "join_count",
    "join_exists",
    "join_hash",
    "join_leapfrog",
    "join_nested_loop",
    "join_tetris",
    "join_yannakakis",
    "make_oracle",
    "triangle_count",
]
