"""Yannakakis' algorithm for α-acyclic joins [73] — the classic baseline.

Three phases over a join tree (built by GYO ear removal):

1. bottom-up semijoin pass (each child filters its parent),
2. top-down semijoin pass (each parent filters its children),
3. bottom-up join along the tree.

After full reduction every partial tuple extends to an output tuple, so
for a *full* join query the intermediate results never exceed the output
— the Õ(N + Z) guarantee that Table 1's first row credits to [73] and
that Tetris-Preloaded matches (Theorem D.8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.query import Database, JoinQuery
from repro.relational.schema import RelationSchema


class JoinTree:
    """A join tree over the query's atoms: parent pointers by atom name."""

    def __init__(
        self,
        order: List[str],
        parent: Dict[str, Optional[str]],
        attrs: Dict[str, Tuple[str, ...]],
    ):
        #: Ear-removal order: leaves first, root last.
        self.order = order
        self.parent = parent
        self.attrs = attrs

    @property
    def root(self) -> str:
        return self.order[-1]


def build_join_tree(query: JoinQuery) -> JoinTree:
    """GYO ear removal over atoms; raises for cyclic queries.

    An atom E is an *ear* when the attributes it shares with the rest of
    the query are all contained in some other atom F; F becomes E's parent.
    """
    remaining: Dict[str, Set[str]] = {
        a.name: set(a.attrs) for a in query.atoms
    }
    attrs = {a.name: a.attrs for a in query.atoms}
    parent: Dict[str, Optional[str]] = {}
    order: List[str] = []
    while len(remaining) > 1:
        ear = None
        for name, vs in remaining.items():
            others = set().union(
                *(v for n, v in remaining.items() if n != name)
            )
            shared = vs & others
            for other, ovs in remaining.items():
                if other != name and shared <= ovs:
                    ear = (name, other)
                    break
            if ear:
                break
        if ear is None:
            raise ValueError(
                "query is not α-acyclic; Yannakakis does not apply"
            )
        name, par = ear
        parent[name] = par
        order.append(name)
        del remaining[name]
    root = next(iter(remaining))
    parent[root] = None
    order.append(root)
    return JoinTree(order, parent, attrs)


def _semijoin(
    left: Set[tuple], left_attrs: Sequence[str],
    right: Set[tuple], right_attrs: Sequence[str],
) -> Set[tuple]:
    """left ⋉ right: keep left tuples matching some right tuple."""
    common = [a for a in left_attrs if a in right_attrs]
    if not common:
        return left if right else set()
    lpos = [list(left_attrs).index(a) for a in common]
    rpos = [list(right_attrs).index(a) for a in common]
    keys = {tuple(t[i] for i in rpos) for t in right}
    return {t for t in left if tuple(t[i] for i in lpos) in keys}


def _join(
    left: List[tuple], left_attrs: List[str],
    right: Set[tuple], right_attrs: Sequence[str],
) -> Tuple[List[tuple], List[str]]:
    """Hash join producing tuples over left_attrs ∪ right_attrs."""
    common = [a for a in left_attrs if a in right_attrs]
    new_attrs = [a for a in right_attrs if a not in left_attrs]
    out_attrs = list(left_attrs) + new_attrs
    rpos_common = [list(right_attrs).index(a) for a in common]
    rpos_new = [list(right_attrs).index(a) for a in new_attrs]
    lpos_common = [left_attrs.index(a) for a in common]
    table: Dict[tuple, List[tuple]] = {}
    for t in right:
        key = tuple(t[i] for i in rpos_common)
        table.setdefault(key, []).append(tuple(t[i] for i in rpos_new))
    out: List[tuple] = []
    for t in left:
        key = tuple(t[i] for i in lpos_common)
        for ext in table.get(key, ()):
            out.append(t + ext)
    return out, out_attrs


def join_yannakakis(
    query: JoinQuery, db: Database
) -> List[Tuple[int, ...]]:
    """Evaluate an α-acyclic join; output tuples follow query.variables."""
    tree = build_join_tree(query)
    tuples: Dict[str, Set[tuple]] = {
        a.name: set(db[a.name].tuples()) for a in query.atoms
    }
    # Phase 1 — bottom-up: each ear filters its parent.
    for name in tree.order[:-1]:
        par = tree.parent[name]
        tuples[par] = _semijoin(
            tuples[par], tree.attrs[par], tuples[name], tree.attrs[name]
        )
    # Phase 2 — top-down: each parent filters its children.
    for name in reversed(tree.order[:-1]):
        par = tree.parent[name]
        tuples[name] = _semijoin(
            tuples[name], tree.attrs[name], tuples[par], tree.attrs[par]
        )
    # Phase 3 — join bottom-up (children folded into parents, root last).
    acc: List[tuple] = sorted(tuples[tree.root])
    acc_attrs: List[str] = list(tree.attrs[tree.root])
    for name in reversed(tree.order[:-1]):
        acc, acc_attrs = _join(
            acc, acc_attrs, tuples[name], tree.attrs[name]
        )
    # Reorder columns to the query's variable order.
    positions = [acc_attrs.index(v) for v in query.variables]
    return sorted({tuple(t[i] for i in positions) for t in acc})
