"""Yannakakis' algorithm for α-acyclic joins [73] — the classic baseline.

Three phases over a join tree (built by GYO ear removal):

1. bottom-up semijoin pass (each child filters its parent),
2. top-down semijoin pass (each parent filters its children),
3. bottom-up join along the tree.

After full reduction every partial tuple extends to an output tuple, so
for a *full* join query the intermediate results never exceed the output
— the Õ(N + Z) guarantee that Table 1's first row credits to [73] and
that Tetris-Preloaded matches (Theorem D.8).

:func:`iter_yannakakis` streams phase 3 as a lazy generator pipeline:
the semijoin passes stay O(N) and eager, but the final join cascade
materializes nothing — after full reduction every streamed prefix is
output-bound work, making this the natural Õ(N + k) backend for
``execute(..., limit=k)`` on acyclic queries.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.joins.pipeline import hash_stage, probe
from repro.relational.query import Database, JoinQuery
from repro.relational.schema import RelationSchema


class JoinTree:
    """A join tree over the query's atoms: parent pointers by atom name."""

    def __init__(
        self,
        order: List[str],
        parent: Dict[str, Optional[str]],
        attrs: Dict[str, Tuple[str, ...]],
    ):
        #: Ear-removal order: leaves first, root last.
        self.order = order
        self.parent = parent
        self.attrs = attrs

    @property
    def root(self) -> str:
        return self.order[-1]


def build_join_tree(query: JoinQuery) -> JoinTree:
    """GYO ear removal over atoms; raises for cyclic queries.

    An atom E is an *ear* when the attributes it shares with the rest of
    the query are all contained in some other atom F; F becomes E's parent.
    """
    remaining: Dict[str, Set[str]] = {
        a.name: set(a.attrs) for a in query.atoms
    }
    attrs = {a.name: a.attrs for a in query.atoms}
    parent: Dict[str, Optional[str]] = {}
    order: List[str] = []
    while len(remaining) > 1:
        ear = None
        for name, vs in remaining.items():
            others = set().union(
                *(v for n, v in remaining.items() if n != name)
            )
            shared = vs & others
            for other, ovs in remaining.items():
                if other != name and shared <= ovs:
                    ear = (name, other)
                    break
            if ear:
                break
        if ear is None:
            raise ValueError(
                "query is not α-acyclic; Yannakakis does not apply"
            )
        name, par = ear
        parent[name] = par
        order.append(name)
        del remaining[name]
    root = next(iter(remaining))
    parent[root] = None
    order.append(root)
    return JoinTree(order, parent, attrs)


def _semijoin(
    left: Set[tuple], left_attrs: Sequence[str],
    right: Set[tuple], right_attrs: Sequence[str],
) -> Set[tuple]:
    """left ⋉ right: keep left tuples matching some right tuple."""
    common = [a for a in left_attrs if a in right_attrs]
    if not common:
        return left if right else set()
    lpos = [list(left_attrs).index(a) for a in common]
    rpos = [list(right_attrs).index(a) for a in common]
    keys = {tuple(t[i] for i in rpos) for t in right}
    return {t for t in left if tuple(t[i] for i in lpos) in keys}


def iter_yannakakis(
    query: JoinQuery, db: Database
) -> Iterator[Tuple[int, ...]]:
    """Stream an α-acyclic join's output lazily (unsorted).

    Phases 1–2 (the semijoin reduction) run eagerly in O(N); phase 3 is
    a generator cascade over the fully-reduced relations, so no
    intermediate join result is ever materialized.
    """
    tree = build_join_tree(query)
    # The frozenset of each relation is shared zero-copy; semijoins
    # rebind names to fresh (smaller) sets, never mutate.
    tuples: Dict[str, Set[tuple]] = {
        a.name: db[a.name].tuples() for a in query.atoms
    }
    # Phase 1 — bottom-up: each ear filters its parent.
    for name in tree.order[:-1]:
        par = tree.parent[name]
        tuples[par] = _semijoin(
            tuples[par], tree.attrs[par], tuples[name], tree.attrs[name]
        )
    # Phase 2 — top-down: each parent filters its children.
    for name in reversed(tree.order[:-1]):
        par = tree.parent[name]
        tuples[name] = _semijoin(
            tuples[name], tree.attrs[name], tuples[par], tree.attrs[par]
        )
    # Phase 3 — lazy join cascade (children folded into parents, root
    # last).  Hash tables are built per reduced relation up front; the
    # probe chain streams.
    acc_attrs: List[str] = list(tree.attrs[tree.root])
    stream: Iterator[tuple] = iter(tuples[tree.root])
    for name in reversed(tree.order[:-1]):
        table, lpos_common, new_attrs = hash_stage(
            acc_attrs, tree.attrs[name], tuples[name]
        )
        stream = probe(stream, table, lpos_common)
        acc_attrs = acc_attrs + new_attrs
    positions = [acc_attrs.index(v) for v in query.variables]
    for t in stream:
        yield tuple(t[i] for i in positions)


def join_yannakakis(
    query: JoinQuery, db: Database
) -> List[Tuple[int, ...]]:
    """Evaluate an α-acyclic join; output tuples follow query.variables.

    Materialized and sorted; :func:`iter_yannakakis` is the streaming
    form.
    """
    return sorted(set(iter_yannakakis(query, db)))
