"""Generic worst-case-optimal join (Leapfrog Triejoin / NPRR skeleton).

The attribute-at-a-time join of [52, 72]: fix a global attribute order;
at each level intersect, across all atoms containing the attribute, the
value sets compatible with the current partial binding.  Picking the
smallest candidate set and probing the others realizes the AGM bound
(Table 1 row 2's comparator class).

Relations are stored as nested-dict tries in GAO-restricted attribute
order — the same structure the paper's B-tree indexes expose.  Each trie
is built from the relation's **cached sorted view** for that order
(:meth:`Relation.sorted_by`), so repeated joins over the same database
never re-sort the hot path; :func:`iter_leapfrog` streams output rows
lazily for the engine's cursor API.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.indexes.oracle import default_gao
from repro.relational.query import Database, JoinQuery


def _build_trie(rows, arity: int) -> Dict:
    root: Dict = {}
    for t in rows:
        node = root
        for v in t:
            node = node.setdefault(v, {})
    return root


def iter_leapfrog(
    query: JoinQuery,
    db: Database,
    gao: Optional[Sequence[str]] = None,
) -> Iterator[Tuple[int, ...]]:
    """Stream the join output lazily (unsorted, duplicate-free).

    Rows follow ``query.variables`` component order but are produced in
    GAO enumeration order; consuming a prefix does only the work needed
    for that prefix.
    """
    gao = tuple(gao) if gao is not None else default_gao(query)
    if sorted(gao) != sorted(query.variables):
        raise ValueError(
            f"GAO {gao} is not a permutation of {query.variables}"
        )
    # Per-atom tries in GAO-restricted order, plus which GAO level each
    # trie depth corresponds to.  The per-order sorted rows come from the
    # relation's shared view cache — one sort per (relation, order) for
    # the lifetime of the database, not per join.
    tries: List[Dict] = []
    atom_levels: List[List[int]] = []
    for atom in query.atoms:
        order = tuple(a for a in gao if a in atom.attrs)
        rows = db.sorted_view(atom.name, order).rows
        tries.append(_build_trie(rows, len(order)))
        atom_levels.append([gao.index(a) for a in order])

    n = len(gao)
    binding: List[int] = [0] * n
    # Positions permuting a GAO-ordered binding into variables order.
    positions = [gao.index(v) for v in query.variables]
    # relevant[level] = atoms whose tries sit at this level (their cursor
    # depth matches because atom orders follow the GAO).
    relevant = [
        [i for i, levels in enumerate(atom_levels) if level in levels]
        for level in range(n)
    ]

    def recurse(level: int, cursors: List[Dict]):
        if level == n:
            yield tuple(binding[i] for i in positions)
            return
        atoms_here = relevant[level]
        if not atoms_here:
            # Cannot happen for natural joins — every variable occurs in
            # some atom.
            raise AssertionError("unconstrained attribute in generic join")
        # Intersect candidate values: iterate the smallest node.
        nodes = [cursors[i] for i in atoms_here]
        smallest = min(nodes, key=len)
        for value in sorted(smallest):
            if all(value in node for node in nodes):
                binding[level] = value
                nxt = list(cursors)
                for i in atoms_here:
                    nxt[i] = cursors[i][value]
                yield from recurse(level + 1, nxt)

    yield from recurse(0, tries)


def join_leapfrog(
    query: JoinQuery,
    db: Database,
    gao: Optional[Sequence[str]] = None,
) -> List[Tuple[int, ...]]:
    """Evaluate a join with the generic WCOJ algorithm, materialized.

    Output tuples follow ``query.variables`` order regardless of the GAO
    and are sorted; :func:`iter_leapfrog` is the streaming form.
    """
    return sorted(iter_leapfrog(query, db, gao=gao))
