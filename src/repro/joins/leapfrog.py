"""Generic worst-case-optimal join (Leapfrog Triejoin / NPRR skeleton).

The attribute-at-a-time join of [52, 72]: fix a global attribute order;
at each level intersect, across all atoms containing the attribute, the
value sets compatible with the current partial binding.  Picking the
smallest candidate set and probing the others realizes the AGM bound
(Table 1 row 2's comparator class).

Relations are stored as nested-dict tries in GAO-restricted attribute
order — the same structure the paper's B-tree indexes expose.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.indexes.oracle import default_gao
from repro.relational.query import Database, JoinQuery


def _build_trie(rows, arity: int) -> Dict:
    root: Dict = {}
    for t in rows:
        node = root
        for v in t:
            node = node.setdefault(v, {})
    return root


def join_leapfrog(
    query: JoinQuery,
    db: Database,
    gao: Optional[Sequence[str]] = None,
) -> List[Tuple[int, ...]]:
    """Evaluate a join with the generic WCOJ algorithm.

    Output tuples follow ``query.variables`` order regardless of the GAO.
    """
    gao = tuple(gao) if gao is not None else default_gao(query)
    if sorted(gao) != sorted(query.variables):
        raise ValueError(
            f"GAO {gao} is not a permutation of {query.variables}"
        )
    # Per-atom tries in GAO-restricted order, plus which GAO level each
    # trie depth corresponds to.
    tries: List[Dict] = []
    atom_levels: List[List[int]] = []
    for atom in query.atoms:
        order = tuple(a for a in gao if a in atom.attrs)
        rows = db[atom.name].sorted_by(order)
        tries.append(_build_trie(rows, len(order)))
        atom_levels.append([gao.index(a) for a in order])

    n = len(gao)
    out: List[Tuple[int, ...]] = []
    binding: List[int] = [0] * n
    # cursors[i] = current trie node of atom i (dict) at its current depth
    cursor_stack: List[List[Optional[Dict]]] = [list(tries)]

    def recurse(level: int) -> None:
        cursors = cursor_stack[-1]
        if level == n:
            out.append(tuple(binding))
            return
        # Atoms containing this attribute: their cursors sit exactly at the
        # trie depth for this level because atom orders follow the GAO.
        relevant = [
            i for i, levels in enumerate(atom_levels) if level in levels
        ]
        if not relevant:
            # Cannot happen for natural joins — every variable occurs in
            # some atom.
            raise AssertionError("unconstrained attribute in generic join")
        # Intersect candidate values: iterate the smallest node.
        nodes = [cursors[i] for i in relevant]
        smallest = min(nodes, key=len)
        for value in sorted(smallest):
            if all(value in node for node in nodes):
                binding[level] = value
                nxt = list(cursors)
                for i in relevant:
                    nxt[i] = cursors[i][value]
                cursor_stack.append(nxt)
                recurse(level + 1)
                cursor_stack.pop()

    recurse(0)
    # Reorder from GAO to query.variables.
    positions = [gao.index(v) for v in query.variables]
    return sorted(tuple(t[i] for i in positions) for t in out)
