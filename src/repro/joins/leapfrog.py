"""Generic worst-case-optimal join (Leapfrog Triejoin / NPRR skeleton).

The attribute-at-a-time join of [52, 72]: fix a global attribute order;
at each level intersect, across all atoms containing the attribute, the
value sets compatible with the current partial binding.  Leapfrogging
the smallest candidate set against the others realizes the AGM bound
(Table 1 row 2's comparator class).

Instead of materializing nested-dict tries per call, each atom is read
as a ``(lo, hi)`` row range directly over the relation's **cached
sorted view** for its GAO-restricted order
(:meth:`Relation.sorted_by`): within a range the column at the atom's
current depth is sorted, so every *seek* — "advance to the first row
with value ≥ v" — **gallops**: a doubling probe from the current
position finds a bracketing window in O(log distance), and a bisection
inside the window pins the exact row.  Skewed inputs, where one atom's
cursor must leap over long runs, cost logarithmic instead of linear
time, and repeated joins over the same database never rebuild anything
— the sorted views are shared, zero-copy, for the lifetime of the
relations.  :func:`iter_leapfrog` streams output rows lazily for the
engine's cursor API.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.indexes.oracle import default_gao
from repro.relational.query import Database, JoinQuery


def _seek(rows, k: int, lo: int, hi: int, v: int) -> int:
    """First index in ``[lo, hi)`` whose row has ``row[k] >= v``.

    Galloping (exponential) search from ``lo``: doubling steps find a
    window whose far edge passes ``v``, then a bisection inside the
    window finds the boundary — O(log d) comparisons for a seek that
    lands ``d`` rows ahead, never a linear scan.
    """
    if lo >= hi or rows[lo][k] >= v:
        return lo
    step = 1
    pos = lo
    while pos + step < hi and rows[pos + step][k] < v:
        pos += step
        step <<= 1
    lo = pos + 1
    hi = pos + step if pos + step < hi else hi
    while lo < hi:
        mid = (lo + hi) >> 1
        if rows[mid][k] < v:
            lo = mid + 1
        else:
            hi = mid
    return lo


def iter_leapfrog(
    query: JoinQuery,
    db: Database,
    gao: Optional[Sequence[str]] = None,
    compiled: Optional[bool] = None,
) -> Iterator[Tuple[int, ...]]:
    """Stream the join output lazily (unsorted, duplicate-free).

    Rows follow ``query.variables`` component order but are produced in
    GAO enumeration order; consuming a prefix does only the work needed
    for that prefix.  By default the intersection runs as a per-plan
    compiled kernel over the views' flat columns
    (:func:`repro.engine.codegen.leapfrog_kernel`); ``compiled=False``
    forces the interpreted recursion below, which is the semantic
    reference the parity tests pin the kernel against.
    """
    gao = tuple(gao) if gao is not None else default_gao(query)
    if sorted(gao) != sorted(query.variables):
        raise ValueError(
            f"GAO {gao} is not a permutation of {query.variables}"
        )
    # Per-atom cached sorted views in GAO-restricted order.  The rows
    # come from the relation's shared view cache — one sort per
    # (relation, order) for the lifetime of the database, not per join.
    n = len(gao)
    views = [
        db.sorted_view(
            atom.name, tuple(a for a in gao if a in atom.attrs)
        )
        for atom in query.atoms
    ]
    if compiled is not False:
        from repro.engine.codegen import leapfrog_kernel

        kernel = leapfrog_kernel(query, gao)
        if kernel is not None:
            yield from kernel(views)
            return
    atom_rows: List[list] = [view.rows for view in views]
    atom_depth: List[dict] = []  # gao level -> column index in the atom
    for view in views:
        order = view.attr_order
        atom_depth.append({gao.index(a): d for d, a in enumerate(order)})

    binding: List[int] = [0] * n
    # Positions permuting a GAO-ordered binding into variables order.
    positions = [gao.index(v) for v in query.variables]
    # relevant[level] = (atom index, column depth) pairs for the atoms
    # constraining this GAO level.
    relevant = [
        [(i, depths[level]) for i, depths in enumerate(atom_depth)
         if level in depths]
        for level in range(n)
    ]
    for level, atoms_here in enumerate(relevant):
        if not atoms_here:
            # Cannot happen for natural joins — every variable occurs in
            # some atom.
            raise AssertionError("unconstrained attribute in generic join")

    def recurse(level: int, ranges: List[Tuple[int, int]]):
        if level == n:
            yield tuple(binding[i] for i in positions)
            return
        atoms_here = relevant[level]
        # Leapfrog intersection over the participating atoms' columns.
        pos = {i: ranges[i][0] for i, _ in atoms_here}
        while True:
            # v = current max over participants; everyone gallops to it.
            v = None
            aligned = True
            for i, k in atoms_here:
                p = pos[i]
                if p >= ranges[i][1]:
                    return
                val = atom_rows[i][p][k]
                if v is None or val > v:
                    if v is not None:
                        aligned = False
                    v = val
                elif val < v:
                    aligned = False
            if not aligned:
                progressed = False
                for i, k in atoms_here:
                    lo, hi = ranges[i]
                    p = _seek(atom_rows[i], k, pos[i], hi, v)
                    if p != pos[i]:
                        progressed = True
                    pos[i] = p
                    if p >= hi:
                        return
                if not progressed:  # pragma: no cover - defensive
                    raise AssertionError("leapfrog failed to advance")
                continue
            # All participants agree on v: narrow each to its v-run.
            binding[level] = v
            nxt = list(ranges)
            ends = {}
            for i, k in atoms_here:
                lo, hi = ranges[i]
                end = _seek(atom_rows[i], k, pos[i], hi, v + 1)
                nxt[i] = (pos[i], end)
                ends[i] = end
            yield from recurse(level + 1, nxt)
            for i, _ in atoms_here:
                pos[i] = ends[i]

    yield from recurse(0, [(0, len(rows)) for rows in atom_rows])


def join_leapfrog(
    query: JoinQuery,
    db: Database,
    gao: Optional[Sequence[str]] = None,
    compiled: Optional[bool] = None,
) -> List[Tuple[int, ...]]:
    """Evaluate a join with the generic WCOJ algorithm, materialized.

    Output tuples follow ``query.variables`` order regardless of the GAO
    and are sorted; :func:`iter_leapfrog` is the streaming form.
    """
    return sorted(iter_leapfrog(query, db, gao=gao, compiled=compiled))
