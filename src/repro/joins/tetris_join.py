"""Join evaluation via Tetris (Proposition 3.6).

Wires a :class:`~repro.relational.query.JoinQuery` over an indexed database
into a Box Cover Problem instance and runs the requested Tetris variant.
The BCP output — the points covered by *no* gap box — is exactly the join
output.

The splitting attribute order defaults to the theorem-appropriate choice:
reverse GYO elimination for α-acyclic queries (Theorem D.8), a minimum
induced-width elimination order otherwise (Theorems 4.6 / 4.9).

The whole pipeline below the :class:`JoinResult` boundary is packed:
indexes emit packed gap boxes, :class:`QueryGapOracle` lifts them packed,
and the engine resolves packed — output tuples of domain values are the
only unpacked artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.resolution import ResolutionStats
from repro.core.tetris import TetrisEngine
from repro.indexes.oracle import (
    QueryGapOracle,
    build_btree_indexes,
    build_dyadic_indexes,
    build_kdtree_indexes,
    default_gao,
)
from repro.relational.query import Database, JoinQuery


@dataclass
class JoinResult:
    """Join output plus the run's instrumentation."""

    tuples: List[Tuple[int, ...]]
    variables: Tuple[str, ...]
    stats: ResolutionStats
    gao: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)


def make_oracle(
    query: JoinQuery,
    db: Database,
    index_kind: str = "btree",
    gao: Optional[Sequence[str]] = None,
) -> Tuple[QueryGapOracle, Tuple[str, ...]]:
    """Build the gap-box oracle for a query under a chosen index family."""
    gao = tuple(gao) if gao is not None else default_gao(query)
    if sorted(gao) != sorted(query.variables):
        raise ValueError(
            f"GAO {gao} is not a permutation of {query.variables}"
        )
    if index_kind == "btree":
        indexes = build_btree_indexes(query, db, gao)
    elif index_kind == "dyadic":
        indexes = build_dyadic_indexes(query, db)
    elif index_kind == "kdtree":
        indexes = build_kdtree_indexes(query, db)
    else:
        raise ValueError(f"unknown index kind {index_kind!r}")
    return QueryGapOracle(query, indexes), gao


def join_tetris(
    query: JoinQuery,
    db: Database,
    variant: str = "preloaded",
    index_kind: str = "btree",
    gao: Optional[Sequence[str]] = None,
    stats: Optional[ResolutionStats] = None,
    one_pass: Optional[bool] = None,
    cache_resolvents: bool = True,
    max_outputs: Optional[int] = None,
    mode: Optional[str] = None,
    resolvent_limit: Optional[int] = None,
    compiled: Optional[bool] = None,
) -> JoinResult:
    """Evaluate a natural join with Tetris.

    ``variant`` is ``'preloaded'`` (Section 4.3 worst-case configuration)
    or ``'reloaded'`` (Section 4.4 certificate-based configuration).
    ``mode`` selects the traversal — the frontier-resuming skeleton
    (``"resume"``, the default), TetrisSkeleton2 (``"onepass"``), or the
    paper-faithful restart-per-output loop (``"faithful"``); the legacy
    ``one_pass`` boolean maps onto the latter two when given explicitly.
    ``resolvent_limit`` bounds the cached-resolvent working set (FIFO
    eviction — always safe, resolvents are derived facts).
    ``max_outputs`` caps the engine's enumeration — it stops after that
    many uncovered points, so a capped run materializes O(max_outputs)
    output rows, not Z.
    """
    if variant not in ("preloaded", "reloaded"):
        raise ValueError(f"unknown variant {variant!r}")
    oracle, gao = make_oracle(query, db, index_kind=index_kind, gao=gao)
    stats = stats if stats is not None else ResolutionStats()
    depth = db.domain.depth
    attrs = oracle.attrs
    # The SAO permutes space order into GAO order.
    sao = tuple(attrs.index(a) for a in gao)
    engine = TetrisEngine(
        len(attrs), depth, sao=sao, cache_resolvents=cache_resolvents,
        stats=stats, resolvent_limit=resolvent_limit,
    )
    preload = variant == "preloaded"
    points = engine.run(
        oracle, preload=preload, one_pass=one_pass, max_outputs=max_outputs,
        mode=mode, compiled=compiled,
    )
    return JoinResult(sorted(points), attrs, stats, gao)


def iter_tetris(
    query: JoinQuery,
    db: Database,
    variant: str = "preloaded",
    index_kind: str = "btree",
    gao: Optional[Sequence[str]] = None,
    stats: Optional[ResolutionStats] = None,
    max_outputs: Optional[int] = None,
    mode: Optional[str] = None,
    compiled: Optional[bool] = None,
):
    """Cursor-friendly Tetris: defer all work until first consumption.

    The geometric engine enumerates uncovered points as one resolution
    fixpoint, so rows cannot stream mid-resolution the way the pipeline
    backends do; instead the ``max_outputs`` cap bounds *materialization*
    — ``iter_tetris(..., max_outputs=k)`` does the engine work for k
    witnesses and holds at most O(k) output rows at any moment.
    """
    result = join_tetris(
        query, db, variant=variant, index_kind=index_kind, gao=gao,
        stats=stats, max_outputs=max_outputs, mode=mode, compiled=compiled,
    )
    yield from result.tuples
