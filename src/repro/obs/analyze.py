"""EXPLAIN ANALYZE: execute a plan and annotate it with what happened.

:func:`analyze` runs a query under a forced tracer and returns an
:class:`AnalyzeReport`: the execution result, per-stage wall times from
the span tree, actual-vs-predicted cardinality and cost (the cost model
prices a plan in seconds via
:meth:`~repro.engine.cost.CostModel.predicted_seconds`), and the record
appended to the calibration log.  ``repro explain --analyze`` renders
the report under the ordinary EXPLAIN tree; ``repro calibrate``
(:func:`calibrate_from_log`) replays the accumulated log through
:func:`repro.obs.calibration.fit` and saves constants every later
``CostModel()`` picks up — the feedback loop that shrinks the very error
ANALYZE prints.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import calibration as _calibration
from repro.obs import profiler as _profiler
from repro.obs import tracing as _tracing


@dataclass
class AnalyzeReport:
    """One ANALYZE run: the result plus the predicted-vs-actual story."""

    result: object  # ExecutionResult
    tracer: object  # Tracer
    #: Total wall seconds per span name (a stage may run many spans —
    #: 16 shards, several kernel compiles — so values are sums).
    stage_seconds: Dict[str, float]
    predicted_rows: float
    actual_rows: int
    predicted_seconds: float
    actual_seconds: float
    #: |log₂(actual/predicted seconds)| — the calibration target.
    error_bits: float
    record: Dict = field(default_factory=dict)
    log_path: Optional[str] = None
    #: Sampled self-time per span stage from the process profiler
    #: (``None`` when no profiler ran during the query): within a
    #: stage, what the sampler actually caught the main thread doing.
    profile_stage_seconds: Optional[Dict[str, float]] = None
    #: Sampling rate behind those numbers, for the rendering.
    profile_hz: Optional[int] = None


def _stage_seconds(tracer) -> Dict[str, float]:
    out: Dict[str, float] = {}
    tracer._close_open()
    for span in tracer.spans:
        out[span.name] = out.get(span.name, 0.0) + span.duration
    return out


def analyze(
    query,
    db,
    algorithm: str = "auto",
    index_kind: Optional[str] = None,
    gao=None,
    workers: Optional[int] = None,
    cost_model=None,
    limit: Optional[int] = None,
    decode=None,
    probe_certificate: bool = False,
    log_path: Optional[str] = None,
    append_log: bool = True,
) -> AnalyzeReport:
    """Execute a query traced and measure the plan against reality.

    The run always traces (ANALYZE is the one mode where span overhead
    is the product, not a tax) and, with ``append_log`` (the default),
    appends its measurement to the calibration log so ``repro
    calibrate`` can refit from it.
    """
    from repro.engine.cost import CostModel
    from repro.engine.executor import execute

    model = cost_model if cost_model is not None else CostModel()
    tracer = _tracing.current_tracer()
    if tracer is None:
        tracer = _tracing.Tracer()
    prof = _profiler.maybe_start()
    prof_before = prof.snapshot_samples() if prof is not None else None
    with _tracing.use(tracer):
        result = execute(
            query, db, algorithm=algorithm, index_kind=index_kind,
            gao=gao, workers=workers, limit=limit, decode=decode,
            probe_certificate=probe_certificate, cost_model=model,
        )
    profile_stages: Optional[Dict[str, float]] = None
    if prof is not None:
        # Only this query's samples: diff the sample table around the
        # run, then collapse to per-stage tick counts.
        profile_stages = {}
        for key, count in prof.samples.items():
            delta_ticks = count - prof_before.get(key, 0)
            if delta_ticks > 0:
                stage = key[0]
                profile_stages[stage] = (
                    profile_stages.get(stage, 0.0)
                    + delta_ticks / prof.hz
                )
    plan = result.plan
    stages = _stage_seconds(tracer)
    # The execute stage is the window the cost model prices: planning
    # and stats collection are pipeline overhead, not Table 1 work.
    actual_seconds = stages.get("execute", result.elapsed)
    predicted_seconds = model.predicted_seconds(plan.predicted_cost)
    if actual_seconds > 0 and predicted_seconds > 0:
        error_bits = abs(math.log2(actual_seconds / predicted_seconds))
    else:
        error_bits = 0.0
    record = {
        "ts": time.time(),
        "query": str(query),
        "backend": result.backend,
        "workers": plan.workers,
        "seconds": actual_seconds,
        "quantity": plan.chosen.quantity,
        "predicted_cost": plan.predicted_cost,
        "predicted_seconds": predicted_seconds,
        "predicted_rows": plan.stats.output_estimate,
        "actual_rows": len(result.tuples),
        "cache_hit": plan.cache_hit,
    }
    report = AnalyzeReport(
        result=result,
        tracer=tracer,
        stage_seconds=stages,
        predicted_rows=plan.stats.output_estimate,
        actual_rows=len(result.tuples),
        predicted_seconds=predicted_seconds,
        actual_seconds=actual_seconds,
        error_bits=error_bits,
        record=record,
        profile_stage_seconds=profile_stages,
        profile_hz=prof.hz if prof is not None else None,
    )
    if append_log:
        report.log_path = _calibration.append_run(record, path=log_path)
    return report


def _ratio(actual: float, predicted: float) -> str:
    if predicted <= 0 or actual <= 0:
        return "n/a"
    r = actual / predicted
    return f"{r:.2f}×" if r >= 1 else f"1/{1 / r:.2f}×"


def render_analyze(report: AnalyzeReport) -> str:
    """The ANALYZE postscript: stages, cardinality, cost, metrics."""
    from repro.obs.metrics import render_metrics
    from repro.obs.tracing import render_tree

    lines: List[str] = ["analyze"]
    lines.append("├─ stages (wall time)")
    lines.extend(render_tree(report.tracer.tree(), indent="│   "))
    lines.append(
        f"├─ cardinality : actual {report.actual_rows} vs "
        f"predicted Ẑ ≈ {report.predicted_rows:.4g}  "
        f"({_ratio(report.actual_rows, report.predicted_rows)})"
    )
    lines.append(
        f"├─ cost        : actual {report.actual_seconds * 1e3:.3f} ms vs "
        f"predicted {report.predicted_seconds * 1e3:.3f} ms  "
        f"(error {report.error_bits:.2f} bits, "
        f"{_ratio(report.actual_seconds, report.predicted_seconds)})"
    )
    if report.profile_stage_seconds is not None:
        lines.append(
            f"├─ profile     : sampled self-time per stage "
            f"({report.profile_hz} Hz)"
        )
        by_time = sorted(
            report.profile_stage_seconds.items(), key=lambda kv: -kv[1]
        )
        for stage, seconds in by_time:
            lines.append(f"│   {stage:<20} {seconds * 1e3:9.1f} ms")
        if not by_time:
            lines.append("│   (no samples landed in this query)")
    metrics = getattr(report.result, "metrics", None)
    if metrics is not None:
        lines.append("├─ metrics")
        lines.extend(render_metrics(metrics.nonzero(), indent="│   "))
    if report.log_path is not None:
        lines.append(f"└─ calibration log : appended to {report.log_path}")
    else:
        lines.append("└─ calibration log : not written")
    return "\n".join(lines)


def calibrate_from_log(
    log_path: Optional[str] = None,
    calibration_path: Optional[str] = None,
    base_model=None,
):
    """Replay the ANALYZE log into a refit, saved cost model.

    Returns ``(model, info, saved_path)``; ``info`` carries run counts
    and the before/after :func:`~repro.obs.calibration.cost_error`.
    With an empty log nothing is saved and ``saved_path`` is ``None``.
    """
    runs = _calibration.load_runs(log_path)
    model, info = _calibration.fit(runs, base_model=base_model)
    if info["usable_runs"] == 0:
        return model, info, None
    saved = _calibration.save_calibration(
        model, path=calibration_path, info=info
    )
    return model, info, saved
