"""The flight recorder: what was this process doing over the last N
queries?

Every executed query (while metrics are enabled) appends one
:class:`FlightRecord` to a bounded ring: the plan digest, per-stage
span seconds, the query's metrics delta, its wall time, and where that
wall time sat in the process's latency distribution.  The ring is the
incident-response view — after a slow query, a fault-recovery run, or
an operator ``SIGUSR2``, the recent history is already in memory and
dumps as JSON lines without any prior configuration.

Triggers:

* ``repro metrics --last N`` — print the newest N records;
* ``SIGUSR2`` — dump the whole ring to ``REPRO_FLIGHT_DUMP`` (or
  stderr when unset) without interrupting the query in flight;
* a run whose :class:`~repro.parallel.merge.ParallelReport` recorded
  faults appends its record to ``REPRO_FLIGHT_DUMP`` when that path is
  set (chaos runs stay quiet by default);
* slow-query reports (:mod:`repro.obs.slowlog`) embed the record.

The ring size is ``REPRO_FLIGHT_RECORDS`` (default
:data:`DEFAULT_CAPACITY`); records are plain dicts of scalars, so a
full ring is a few hundred KB, not a leak.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import REGISTRY as _METRICS

#: Ring capacity (records kept).
FLIGHT_RECORDS_ENV = "REPRO_FLIGHT_RECORDS"
DEFAULT_CAPACITY = 128

#: Where dumps go.  Unset: ``SIGUSR2`` dumps to stderr and fault runs
#: don't dump at all.
FLIGHT_DUMP_ENV = "REPRO_FLIGHT_DUMP"

#: The histogram the percentile context is computed against.
LATENCY_HIST = "query.latency"


def _env_capacity() -> int:
    raw = os.environ.get(FLIGHT_RECORDS_ENV)
    if raw is None:
        return DEFAULT_CAPACITY
    try:
        n = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    return n if n > 0 else DEFAULT_CAPACITY


def plan_digest(plan) -> str:
    """A short stable fingerprint of a plan's execution shape.

    Two queries with the same digest ran the same backend over the
    same shard/order decisions — the grouping key for "which plan
    shape is slow", deliberately blind to data content.
    """
    text = "|".join(
        str(x)
        for x in (
            plan.backend,
            plan.index_kind,
            ",".join(plan.gao or ()),
            plan.workers,
            plan.num_shards,
            ",".join(plan.split_attrs or ()),
        )
    )
    return hashlib.sha1(text.encode()).hexdigest()[:10]


@dataclass
class FlightRecord:
    """One query's black-box entry (all scalars; JSON-ready)."""

    ts: float
    description: str
    plan_digest: str
    backend: str
    workers: int
    seconds: float
    rows: int
    #: span-stage name → summed wall seconds (empty when untraced)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: the query's nonzero metrics delta
    metrics: Dict[str, float] = field(default_factory=dict)
    #: process latency distribution at record time: p50/p95/p99
    quantiles: Dict[str, float] = field(default_factory=dict)
    #: where this query's wall time sat in that distribution (0..1)
    percentile: Optional[float] = None
    #: fault-recovery counters when the run recorded any
    faults: Optional[Dict[str, int]] = None

    def to_dict(self) -> dict:
        out = {
            "ts": self.ts,
            "description": self.description,
            "plan_digest": self.plan_digest,
            "backend": self.backend,
            "workers": self.workers,
            "seconds": self.seconds,
            "rows": self.rows,
            "stage_seconds": self.stage_seconds,
            "metrics": self.metrics,
            "quantiles": self.quantiles,
            "percentile": self.percentile,
        }
        if self.faults:
            out["faults"] = self.faults
        return out


class FlightRecorder:
    """A bounded ring of :class:`FlightRecord` entries."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is None:
            capacity = _env_capacity()
        self.capacity = capacity
        self._ring: "deque[FlightRecord]" = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, rec: FlightRecord) -> FlightRecord:
        self._ring.append(rec)
        return rec

    def last(self, n: int) -> List[FlightRecord]:
        """The newest ``n`` records, oldest of them first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def clear(self) -> None:
        self._ring.clear()

    def dump(self, fh=None) -> None:
        """Every record as one JSON line (oldest first)."""
        out = fh if fh is not None else sys.stderr
        for rec in self._ring:
            out.write(json.dumps(rec.to_dict()) + "\n")

    def dump_to(self, path: str) -> None:
        with open(path, "a") as fh:
            self.dump(fh)


#: The process-wide ring the executor records into.
RECORDER = FlightRecorder()

_SIGNAL_INSTALLED = False


def _on_dump_signal(signum, frame) -> None:  # pragma: no cover - signal
    path = os.environ.get(FLIGHT_DUMP_ENV)
    if path:
        RECORDER.dump_to(path)
    else:
        RECORDER.dump(sys.stderr)


def _ensure_signal_handler() -> None:
    """Install the ``SIGUSR2`` dump handler (main thread only; at most
    one attempt per process)."""
    global _SIGNAL_INSTALLED
    if _SIGNAL_INSTALLED:
        return
    _SIGNAL_INSTALLED = True
    try:
        import signal

        signal.signal(signal.SIGUSR2, _on_dump_signal)
    except (ValueError, OSError, AttributeError):
        # Not the main thread, or a platform without SIGUSR2: the ring
        # still works, only the signal trigger is unavailable.
        pass


def record_query(
    description: str,
    seconds: float,
    result,
    delta,
    stage_seconds: Optional[Dict[str, float]] = None,
) -> FlightRecord:
    """Append one executed query to the ring.

    ``result`` is the engine's ``ExecutionResult`` (plan + optional
    parallel report), ``delta`` the query's :class:`MetricsSnapshot`
    diff.  The latency quantiles are read from the process registry
    *after* this query's own observation, so the percentile answers
    "where did this query sit among everything this process has run".
    """
    _ensure_signal_handler()
    plan = result.plan
    hist = _METRICS.histogram(LATENCY_HIST)
    quantiles: Dict[str, float] = {}
    percentile = None
    if hist is not None and hist.count > 0:
        quantiles = {
            "p50": hist.quantile(0.5),
            "p95": hist.quantile(0.95),
            "p99": hist.quantile(0.99),
        }
        percentile = hist.rank(seconds)
    faults = None
    report = result.parallel
    if report is not None and report.had_faults:
        faults = {
            "respawns": report.worker_respawns,
            "retries": report.shard_retries,
            "quarantined": report.shards_quarantined,
            "serial_fallback": report.serial_fallback_shards,
            "shm_export_errors": report.shm_export_errors,
            "timed_out": int(report.timed_out),
        }
    rec = FlightRecord(
        ts=time.time(),
        description=description,
        plan_digest=plan_digest(plan),
        backend=plan.backend,
        workers=plan.workers if result.parallel is not None else 1,
        seconds=seconds,
        rows=len(result.tuples),
        stage_seconds=dict(stage_seconds or {}),
        metrics=(
            dict(delta.nonzero().as_dict()) if delta is not None else {}
        ),
        quantiles=quantiles,
        percentile=percentile,
        faults=faults,
    )
    RECORDER.record(rec)
    if faults is not None:
        path = os.environ.get(FLIGHT_DUMP_ENV)
        if path:
            with open(path, "a") as fh:
                fh.write(json.dumps(rec.to_dict()) + "\n")
    return rec


def render_record(rec: FlightRecord, indent: str = "") -> List[str]:
    """A record as aligned human-readable lines (slow-query reports)."""
    lines = [
        f"{indent}plan {rec.plan_digest}  backend={rec.backend}  "
        f"workers={rec.workers}  rows={rec.rows}  "
        f"{rec.seconds * 1000.0:.1f} ms",
    ]
    if rec.quantiles:
        pct = (
            f"  (this query ≈ p{round(100 * rec.percentile)})"
            if rec.percentile is not None
            else ""
        )
        lines.append(
            f"{indent}process latency: "
            + "  ".join(
                f"{k}={v * 1000.0:.1f}ms"
                for k, v in sorted(rec.quantiles.items())
            )
            + pct
        )
    if rec.stage_seconds:
        top = sorted(
            rec.stage_seconds.items(), key=lambda kv: -kv[1]
        )[:6]
        lines.append(
            f"{indent}stages: "
            + "  ".join(f"{k}={v * 1000.0:.1f}ms" for k, v in top)
        )
    if rec.faults:
        lines.append(
            f"{indent}faults: "
            + "  ".join(f"{k}={v}" for k, v in rec.faults.items() if v)
        )
    return lines
