"""The cost-model feedback loop: measured runs → refit calibration.

:class:`~repro.engine.cost.CostModel` has had a ``calibrate`` hook since
PR 2 — ``{backend: (seconds, quantity)}`` measurements refit the
constant factors — but nothing produced measurements automatically.
This module closes the loop:

* every ``repro explain --analyze`` run appends one JSON line to the
  **calibration log** (:func:`append_run`): the backend that ran, its
  measured wall seconds, the cost model's abstract quantity and
  predicted cost, and actual vs. predicted cardinality;
* ``repro calibrate`` replays the log (:func:`fit`): per-backend
  constants come from the median measured seconds-per-unit (medians
  shrug off the stray cold-cache outlier a mean would chase), pass
  through :meth:`CostModel.calibrate`, and land in the **saved
  calibration file** together with ``unit_seconds`` — the wall-clock
  value of one abstract cost unit, which turns predicted costs into
  predicted seconds;
* :func:`load_saved` feeds the saved file back into every
  ``CostModel()`` the planner builds (memoized on file mtime), so the
  next query is planned — and its ANALYZE error measured — under the
  refit constants.

Paths default to a ``.repro/`` directory under the working directory and
are overridable with ``REPRO_ANALYZE_LOG`` / ``REPRO_CALIBRATION`` (or
per call), which is also how the tests isolate themselves.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Mapping, Optional, Tuple

ANALYZE_LOG_ENV = "REPRO_ANALYZE_LOG"
CALIBRATION_ENV = "REPRO_CALIBRATION"

_DEFAULT_DIR = ".repro"
_DEFAULT_LOG = "analyze_log.jsonl"
_DEFAULT_CALIBRATION = "calibration.json"

#: Wall seconds of one abstract cost unit before any fit: one hash-table
#: probe, ~0.8µs on the bench hosts (see the CostModel constants).
DEFAULT_UNIT_SECONDS = 8e-7


def default_log_path() -> str:
    return os.environ.get(
        ANALYZE_LOG_ENV, os.path.join(_DEFAULT_DIR, _DEFAULT_LOG)
    )


def default_calibration_path() -> str:
    return os.environ.get(
        CALIBRATION_ENV, os.path.join(_DEFAULT_DIR, _DEFAULT_CALIBRATION)
    )


# -- the run log ---------------------------------------------------------------


def append_run(record: Mapping, path: Optional[str] = None) -> str:
    """Append one ANALYZE record to the calibration log; returns the path.

    Appends rotate at ``REPRO_LOG_MAX_BYTES`` (``path`` → ``path.1``),
    so analyzing in a loop is disk-bounded; ``repro calibrate`` fits
    from the newest cap's worth of runs, which is also the freshest
    signal for the constants.
    """
    from repro.obs.slowlog import rotating_append

    path = path or default_log_path()
    rotating_append(
        path, json.dumps(dict(record), sort_keys=True) + "\n"
    )
    return path


def load_runs(path: Optional[str] = None) -> List[Dict]:
    """Every well-formed record in the log (missing file → empty)."""
    path = path or default_log_path()
    runs: List[Dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    runs.append(record)
    except FileNotFoundError:
        pass
    return runs


def _usable(run: Mapping) -> bool:
    try:
        return (
            float(run["seconds"]) > 0
            and float(run["quantity"]) > 0
            and bool(run["backend"])
        )
    except (KeyError, TypeError, ValueError):
        return False


# -- fitting -------------------------------------------------------------------


def fit(
    runs: List[Dict], base_model=None
) -> Tuple[object, Dict]:
    """Refit a :class:`CostModel` from logged runs.

    Per-backend seconds-per-unit is the median over that backend's runs;
    the medians go through :meth:`CostModel.calibrate` (which normalizes
    them into the model's relative-factor space), and ``unit_seconds``
    is refit as the median of measured seconds over refit predicted
    cost.  Returns ``(model, info)`` where ``info`` carries the
    per-backend sample counts and the before/after error.
    """
    from repro.engine.cost import CostModel

    model = base_model if base_model is not None else CostModel()
    usable = [r for r in runs if _usable(r)]
    per_backend: Dict[str, List[float]] = {}
    for r in usable:
        per_unit = float(r["seconds"]) / float(r["quantity"])
        per_backend.setdefault(str(r["backend"]), []).append(per_unit)
    measurements = {
        backend: (_median(units), 1.0)
        for backend, units in per_backend.items()
    }
    before = cost_error(usable, model)
    fitted = model.calibrate(measurements)
    ratios = [
        float(r["seconds"])
        / (fitted.calibration.get(str(r["backend"]), 1.0)
           * float(r["quantity"]))
        for r in usable
    ]
    if ratios:
        fitted.unit_seconds = _median(ratios)
    after = cost_error(usable, fitted)
    info = {
        "runs": len(runs),
        "usable_runs": len(usable),
        "samples_per_backend": {
            b: len(v) for b, v in sorted(per_backend.items())
        },
        "error_before": before,
        "error_after": after,
    }
    return fitted, info


def _median(xs: List[float]) -> float:
    ordered = sorted(xs)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def cost_error(runs: List[Dict], model) -> float:
    """Mean |log₂(actual / predicted seconds)| over usable runs.

    The number ANALYZE prints and ``repro calibrate`` shrinks: 0 means
    the model predicts wall time exactly; 1 means off by 2× on average.
    """
    errors = []
    for r in runs:
        if not _usable(r):
            continue
        factor = model.calibration.get(str(r["backend"]), 1.0)
        predicted = factor * float(r["quantity"]) * model.unit_seconds
        if predicted <= 0:
            continue
        errors.append(abs(math.log2(float(r["seconds"]) / predicted)))
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


# -- the saved calibration file ------------------------------------------------

_LOAD_CACHE: Dict[str, Tuple[int, Optional[Dict]]] = {}


def save_calibration(model, path: Optional[str] = None, info=None) -> str:
    """Persist a fitted model's constants; returns the path written."""
    path = path or default_calibration_path()
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload = {
        "calibration": dict(model.calibration),
        "unit_seconds": model.unit_seconds,
    }
    if info:
        payload["fit_info"] = info
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    _LOAD_CACHE.pop(path, None)
    return path


def load_saved(path: Optional[str] = None) -> Optional[Dict]:
    """The saved calibration payload, or ``None`` when absent/invalid.

    Memoized on the file's mtime: the planner builds a ``CostModel`` per
    uncached plan, and a stat call is all the steady state should pay.
    """
    path = path or default_calibration_path()
    try:
        mtime = os.stat(path).st_mtime_ns
    except OSError:
        return None
    cached = _LOAD_CACHE.get(path)
    if cached is not None and cached[0] == mtime:
        return cached[1]
    try:
        with open(path) as fh:
            payload = json.load(fh)
        if not isinstance(payload.get("calibration"), dict):
            payload = None
    except (OSError, json.JSONDecodeError, ValueError):
        payload = None
    _LOAD_CACHE[path] = (mtime, payload)
    return payload


def clear_saved_cache() -> None:
    """Forget memoized calibration loads (tests flipping env paths)."""
    _LOAD_CACHE.clear()
