"""The unified metrics registry: every counter in the engine, one namespace.

Before this module the engine's instrumentation was scattered: kernel
cache hits lived on :class:`~repro.engine.codegen.KernelCache` objects,
plan/stats cache hits on module-private LRUs, sorted-view evictions on
each :class:`~repro.relational.relation.Relation`, shard shipping tallies
on :class:`~repro.parallel.merge.ParallelReport`, and the resolution
counters of Lemma 4.5 on per-query ``ResolutionStats``.  The registry
absorbs them all behind dotted names::

    engine.queries                    engine.plan_cache.hits
    kernels.compile.misses            relation.view.evictions
    tetris.resolutions.by_axis.0      parallel.ship.bytes

Two ingestion paths keep the hot loops honest:

* **Direct instruments** — :meth:`MetricsRegistry.inc`,
  :meth:`~MetricsRegistry.gauge`, :meth:`~MetricsRegistry.observe` — for
  per-query / per-shard events.  Each is one guarded dict update; with
  the registry disabled (:func:`set_enabled`), one attribute test.
  Nothing per-tuple ever calls them: kernels keep counting in locals and
  flush once per query.
* **Collectors** — callbacks registered by the subsystems that already
  own counters (kernel caches, plan/stats caches).  They run only at
  :meth:`~MetricsRegistry.snapshot` time, so steady-state execution pays
  nothing for them.  Counter-valued collector names *add* to any direct
  counter of the same name, so deltas shipped home from pool workers
  (which land in the parent's direct counters) aggregate with the
  parent's own cache traffic instead of being overwritten.

Histograms are log-bucketed (:class:`QuantileHistogram`): every sample
lands in a fixed base-:data:`HIST_BASE` bucket, so ``quantile(q)`` has a
bounded relative error (:data:`HIST_RELATIVE_ERROR`, ≈9.5%) and merging
two histograms — across snapshots or across processes — is exact
bucket-wise addition.  Snapshots still expand each histogram into
``name.count`` / ``name.sum`` / ``name.min`` / ``name.max`` scalars for
backward compatibility, but also carry the bucket data so
:meth:`MetricsSnapshot.since` diffs distributions and
:func:`render_metrics` prints ``p50``/``p95``/``p99`` lines.

:func:`wire_delta` / :func:`merge_wire_delta` are the cross-process
shipping path: a worker snapshots its registry around a shard, encodes
the movement as plain tuples, and the parent folds it in under both the
aggregate names and a ``worker.<wid>.*`` breakdown.
"""

from __future__ import annotations

import math
import os
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

#: Environment switch for the whole registry.  Metrics default ON: every
#: instrument sits at per-query granularity, so the steady-state cost is
#: a handful of dict increments per query, not per tuple.
METRICS_ENV = "REPRO_METRICS"

_COUNTER = "c"
_GAUGE = "g"
_HIST = "h"

#: Fixed log-bucket base.  Every histogram in every process uses the
#: same boundaries, which is what makes cross-process merges exact.
HIST_BASE = 1.2

#: Worst-case relative error of ``quantile``: a sample in bucket
#: ``[B^i, B^(i+1))`` is reported as the geometric midpoint
#: ``B^(i+0.5)``, so the estimate is within a factor ``sqrt(B)`` of the
#: true value — ``sqrt(1.2) - 1 ≈ 9.5%``.
HIST_RELATIVE_ERROR = HIST_BASE ** 0.5 - 1

_LOG_BASE = math.log(HIST_BASE)


def _env_enabled() -> bool:
    return os.environ.get(METRICS_ENV, "1").lower() not in (
        "0", "false", "off", "no",
    )


class QuantileHistogram:
    """A mergeable log-bucketed histogram with bounded-error quantiles.

    Positive samples land in bucket ``i = floor(log_B(v))`` covering
    ``[B^i, B^(i+1))``; zero and negative samples share a dedicated
    bucket (durations are never negative, but the instrument must not
    corrupt itself on one).  Because the boundaries are fixed constants
    of the module, merging two histograms — from two snapshots or two
    processes — is exact: bucket counts add, and the merged histogram is
    identical to one that observed the concatenated sample stream.
    """

    __slots__ = ("count", "total", "lo", "hi", "zero", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.lo = math.inf
        self.hi = -math.inf
        #: samples ≤ 0 (kept out of the log buckets)
        self.zero = 0
        #: bucket index → sample count
        self.buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.lo:
            self.lo = value
        if value > self.hi:
            self.hi = value
        if value > 0.0:
            i = int(math.floor(math.log(value) / _LOG_BASE))
            self.buckets[i] = self.buckets.get(i, 0) + 1
        else:
            self.zero += 1

    # -- merging / diffing -----------------------------------------------------

    def copy(self) -> "QuantileHistogram":
        out = QuantileHistogram()
        out.count = self.count
        out.total = self.total
        out.lo = self.lo
        out.hi = self.hi
        out.zero = self.zero
        out.buckets = dict(self.buckets)
        return out

    def absorb(self, other: "QuantileHistogram") -> None:
        """Exact merge: bucket-wise addition (fixed shared boundaries)."""
        self.count += other.count
        self.total += other.total
        if other.lo < self.lo:
            self.lo = other.lo
        if other.hi > self.hi:
            self.hi = other.hi
        self.zero += other.zero
        buckets = self.buckets
        for i, c in other.buckets.items():
            buckets[i] = buckets.get(i, 0) + c

    def since(
        self, earlier: "Optional[QuantileHistogram]"
    ) -> "QuantileHistogram":
        """The samples recorded after ``earlier`` (bucket-wise subtract).

        Extremes are running values, not counters: the diff keeps them
        only when samples actually arrived in the window.
        """
        if earlier is None or earlier.count == 0:
            return self.copy()
        out = QuantileHistogram()
        out.count = max(0, self.count - earlier.count)
        out.total = max(0.0, self.total - earlier.total)
        if out.count > 0:
            out.lo = self.lo
            out.hi = self.hi
        out.zero = max(0, self.zero - earlier.zero)
        for i, c in self.buckets.items():
            d = c - earlier.buckets.get(i, 0)
            if d > 0:
                out.buckets[i] = d
        return out

    # -- reading ---------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 ≤ q ≤ 1) within ``HIST_RELATIVE_ERROR``.

        Returns the geometric midpoint of the bucket holding the
        ``ceil(q·count)``-th smallest sample, clamped to the observed
        ``[min, max]`` (which tightens single-sample and extreme
        quantiles to exact values).
        """
        if self.count <= 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cum = self.zero
        if cum >= rank:
            return max(self.lo, min(0.0, self.hi))
        for i in sorted(self.buckets):
            cum += self.buckets[i]
            if cum >= rank:
                estimate = HIST_BASE ** (i + 0.5)
                return max(self.lo, min(self.hi, estimate))
        return self.hi

    def rank(self, value: float) -> float:
        """Approximate fraction of samples ≤ ``value`` (for "this query
        sat at ~pNN of the process distribution" context lines)."""
        if self.count <= 0:
            return 0.0
        below = self.zero if value >= 0.0 else 0
        if value > 0.0:
            vi = int(math.floor(math.log(value) / _LOG_BASE))
            for i, c in self.buckets.items():
                if i <= vi:
                    below += c
        return min(1.0, below / self.count)

    def bucket_items(self) -> List[Tuple[int, int]]:
        """Sorted ``(bucket index, count)`` pairs (exposition format)."""
        return sorted(self.buckets.items())

    @staticmethod
    def bucket_upper(index: int) -> float:
        """The exclusive upper boundary of a bucket: ``B^(index+1)``."""
        return HIST_BASE ** (index + 1)

    # -- pickling-friendly wire form -------------------------------------------

    def to_wire(self) -> tuple:
        return (
            self.count,
            self.total,
            self.lo,
            self.hi,
            self.zero,
            tuple(sorted(self.buckets.items())),
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "QuantileHistogram":
        out = cls()
        out.count, out.total, out.lo, out.hi, out.zero, items = wire
        out.buckets = dict(items)
        return out


class MetricsSnapshot(Mapping):
    """An immutable point-in-time view of the registry: name → value.

    Histogram instruments expand into ``name.count`` / ``name.sum`` /
    ``name.min`` / ``name.max`` scalar entries, so a snapshot is always
    a flat mapping of dotted names to numbers; the full bucket data
    rides alongside for quantile queries and exact distribution diffs.
    """

    __slots__ = ("_values", "_kinds", "_hists")

    def __init__(
        self,
        values: Dict[str, float],
        kinds: Optional[Dict[str, str]] = None,
        hists: Optional[Dict[str, QuantileHistogram]] = None,
    ):
        self._values = dict(values)
        self._kinds = dict(kinds) if kinds is not None else {}
        self._hists = dict(hists) if hists is not None else {}

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def kind_of(self, name: str) -> str:
        """``"c"`` (counter), ``"g"`` (gauge) or ``"h"`` (histogram)."""
        return self._kinds.get(name, _COUNTER)

    def histogram(self, name: str) -> Optional[QuantileHistogram]:
        """The full bucket data behind a histogram instrument."""
        return self._hists.get(name)

    def hist_items(self) -> List[Tuple[str, QuantileHistogram]]:
        return sorted(self._hists.items())

    def quantile(self, name: str, q: float) -> Optional[float]:
        """``quantile(q)`` of a histogram instrument, or None."""
        h = self._hists.get(name)
        if h is None or h.count == 0:
            return None
        return h.quantile(q)

    def since(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``earlier`` and this snapshot.

        Counter-like entries subtract (clamped at zero, so an external
        ``reset`` between snapshots cannot produce negative traffic);
        gauges keep this snapshot's value.  Histogram ``.min``/``.max``
        entries are running extremes, not counters: they appear in the
        diff only when the histogram's ``.count`` moved — a query that
        recorded no samples must not inherit an older run's extremes.
        Histogram buckets diff bucket-wise, so quantiles of the window
        are as exact as quantiles of the endpoints.  Names absent from
        the earlier snapshot count from zero.
        """
        out: Dict[str, float] = {}
        for name, value in self._values.items():
            kind = self._kinds.get(name)
            if kind == _GAUGE:
                out[name] = value
            elif kind == _HIST and name.rsplit(".", 1)[-1] in (
                "min", "max",
            ):
                base = name.rsplit(".", 1)[0]
                moved = self._values.get(
                    f"{base}.count", 0
                ) > earlier._values.get(f"{base}.count", 0)
                if moved:
                    out[name] = value
            else:
                out[name] = max(0.0, value - earlier._values.get(name, 0))
        hists = {
            name: h.since(earlier._hists.get(name))
            for name, h in self._hists.items()
        }
        return MetricsSnapshot(out, self._kinds, hists)

    def nonzero(self) -> "MetricsSnapshot":
        """Only the entries with a non-zero value (rendering filter)."""
        return MetricsSnapshot(
            {k: v for k, v in self._values.items() if v},
            self._kinds,
            {k: h for k, h in self._hists.items() if h.count},
        )

    def group(self, prefix: str) -> Dict[str, float]:
        """Entries under a dotted prefix, with the prefix stripped."""
        dot = prefix + "."
        return {
            k[len(dot):]: v
            for k, v in self._values.items()
            if k.startswith(dot)
        }

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)


class MetricsRegistry:
    """Counters, gauges and histograms under one dotted namespace."""

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = _env_enabled() if enabled is None else enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, QuantileHistogram] = {}
        self._collectors: Dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- direct instruments ----------------------------------------------------

    def inc(self, name: str, delta: float = 1) -> None:
        """Add to a monotonic counter (no-op while disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + delta

    def inc_many(self, values: Mapping[str, float]) -> None:
        """Fold a dict of counter deltas in (one enabled check for all)."""
        if not self.enabled:
            return
        counters = self._counters
        for name, delta in values.items():
            if delta:
                counters[name] = counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a quantile histogram."""
        if not self.enabled:
            return
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = QuantileHistogram()
        h.record(value)

    def merge_hist(self, name: str, hist: QuantileHistogram) -> None:
        """Fold a whole histogram in (worker deltas, snapshot replays)."""
        if not self.enabled or hist.count == 0:
            return
        h = self._hists.get(name)
        if h is None:
            self._hists[name] = hist.copy()
        else:
            h.absorb(hist)

    # -- collectors ------------------------------------------------------------

    def register_collector(
        self, name: str, collect: Callable[[], Mapping[str, float]]
    ) -> None:
        """Attach a pull-time source of counter values.

        ``collect()`` runs at snapshot time and returns ``{dotted name:
        value}``.  Registration is keyed by ``name`` and idempotent —
        re-importing a module replaces its collector instead of
        duplicating it.
        """
        self._collectors[name] = collect

    def unregister_collector(self, name: str) -> None:
        self._collectors.pop(name, None)

    # -- reading ---------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Everything the registry knows right now, collectors included."""
        values: Dict[str, float] = {}
        kinds: Dict[str, str] = {}
        for name, v in self._counters.items():
            values[name] = v
            kinds[name] = _COUNTER
        for name, v in self._gauges.items():
            values[name] = v
            kinds[name] = _GAUGE
        hists: Dict[str, QuantileHistogram] = {}
        for name, h in self._hists.items():
            hists[name] = h.copy()
            values[f"{name}.count"] = h.count
            values[f"{name}.sum"] = h.total
            values[f"{name}.min"] = h.lo
            values[f"{name}.max"] = h.hi
            for suffix in ("count", "sum", "min", "max"):
                kinds[f"{name}.{suffix}"] = _HIST
        for collect in self._collectors.values():
            for name, v in collect().items():
                # Collector-owned caches report running totals: treat
                # size-like names as gauges so since() keeps them
                # readable; everything else is a counter and *adds* to
                # any direct counter of the same name (worker-shipped
                # deltas land in the parent's direct counters and must
                # aggregate with the parent's own cache traffic).
                if name.rsplit(".", 1)[-1] in ("entries", "capacity"):
                    values[name] = v
                    kinds[name] = _GAUGE
                else:
                    values[name] = values.get(name, 0) + v
                    kinds[name] = _COUNTER
        return MetricsSnapshot(values, kinds, hists)

    def value(self, name: str, default: float = 0.0) -> float:
        """One instrument's current value (direct instruments only)."""
        if name in self._counters:
            return self._counters[name]
        if name in self._gauges:
            return self._gauges[name]
        return default

    def quantile(self, name: str, q: float) -> Optional[float]:
        """A live histogram's quantile without taking a full snapshot."""
        h = self._hists.get(name)
        if h is None or h.count == 0:
            return None
        return h.quantile(q)

    def histogram(self, name: str) -> Optional[QuantileHistogram]:
        """The live histogram behind a name (read-only use)."""
        return self._hists.get(name)

    def reset(self) -> None:
        """Zero every direct instrument (collector sources are theirs)."""
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()


#: The process-wide registry every subsystem reports into.
REGISTRY = MetricsRegistry()


def set_enabled(on: bool) -> None:
    """Flip the global registry's master switch (tests, benchmarks)."""
    REGISTRY.enabled = on


def enabled() -> bool:
    return REGISTRY.enabled


def snapshot() -> MetricsSnapshot:
    return REGISTRY.snapshot()


# -- cross-process shipping ----------------------------------------------------


def wire_delta(
    before: MetricsSnapshot, after: MetricsSnapshot
) -> Optional[tuple]:
    """Encode the registry movement between two snapshots for the pipe.

    The wire form is plain tuples — ``(counters, histograms)`` with
    ``counters = ((name, delta), ...)`` and ``histograms = ((name,
    hist wire), ...)`` — so it pickles small and fast.  Gauges are
    deliberately excluded: a worker's point-in-time gauge (arena bytes,
    cache entries) is not meaningful folded into the parent.  Returns
    ``None`` when nothing moved, so idle shards ship nothing.
    """
    delta = after.since(before)
    counters = tuple(
        (name, value)
        for name, value in sorted(delta.as_dict().items())
        if value and delta.kind_of(name) == _COUNTER
    )
    hists = tuple(
        (name, h.to_wire())
        for name, h in delta.hist_items()
        if h.count
    )
    if not counters and not hists:
        return None
    return (counters, hists)


def merge_wire_delta(
    registry: MetricsRegistry,
    wire: tuple,
    worker_prefix: Optional[str] = None,
) -> None:
    """Fold a worker's wire delta into ``registry``.

    Counters land under their aggregate names and — when
    ``worker_prefix`` is given (``"worker.3"``) — again under a
    per-worker breakdown, so both "total kernel misses" and "which
    worker missed" are answerable.  Histograms merge bucket-exactly
    under the aggregate name only (per-worker latency distributions
    would multiply cardinality for little insight).
    """
    counters, hists = wire
    if counters:
        registry.inc_many(dict(counters))
        if worker_prefix:
            registry.inc_many(
                {f"{worker_prefix}.{name}": v for name, v in counters}
            )
    for name, hist_wire in hists:
        registry.merge_hist(name, QuantileHistogram.from_wire(hist_wire))


#: Quantiles rendered for every histogram in text output.
_RENDER_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def render_metrics(
    snap: MetricsSnapshot,
    indent: str = "",
    skip_zero: bool = True,
) -> List[str]:
    """A snapshot as aligned ``name : value`` lines, sorted by name.

    Histogram instruments additionally render ``name.p50`` / ``.p95`` /
    ``.p99`` estimate lines next to their count/sum/min/max scalars.
    """
    shown = snap.nonzero() if skip_zero else snap
    entries = shown.as_dict()
    for name, h in shown.hist_items():
        if h.count > 0:
            for q, tag in _RENDER_QUANTILES:
                entries[f"{name}.{tag}"] = h.quantile(q)
    names = sorted(entries)
    if not names:
        return [f"{indent}(no metrics recorded)"]
    width = max(len(n) for n in names)
    lines = []
    for name in names:
        value = entries[name]
        if value == int(value) and abs(value) < 1e15:
            text = str(int(value))
        else:
            text = f"{value:.6g}"
        lines.append(f"{indent}{name:<{width}} : {text}")
    return lines
