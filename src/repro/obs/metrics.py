"""The unified metrics registry: every counter in the engine, one namespace.

Before this module the engine's instrumentation was scattered: kernel
cache hits lived on :class:`~repro.engine.codegen.KernelCache` objects,
plan/stats cache hits on module-private LRUs, sorted-view evictions on
each :class:`~repro.relational.relation.Relation`, shard shipping tallies
on :class:`~repro.parallel.merge.ParallelReport`, and the resolution
counters of Lemma 4.5 on per-query ``ResolutionStats``.  The registry
absorbs them all behind dotted names::

    engine.queries                    engine.plan_cache.hits
    kernels.compile.misses            relation.view.evictions
    tetris.resolutions.by_axis.0      parallel.ship.bytes

Two ingestion paths keep the hot loops honest:

* **Direct instruments** — :meth:`MetricsRegistry.inc`,
  :meth:`~MetricsRegistry.gauge`, :meth:`~MetricsRegistry.observe` — for
  per-query / per-shard events.  Each is one guarded dict update; with
  the registry disabled (:func:`set_enabled`), one attribute test.
  Nothing per-tuple ever calls them: kernels keep counting in locals and
  flush once per query.
* **Collectors** — callbacks registered by the subsystems that already
  own counters (kernel caches, plan/stats caches).  They run only at
  :meth:`~MetricsRegistry.snapshot` time, so steady-state execution pays
  nothing for them.

Snapshots are plain sorted mappings; :meth:`MetricsSnapshot.since`
subtracts an earlier snapshot (counters and histograms diff, gauges keep
the later value), which is how EXPLAIN attributes cache traffic to one
query on a warm engine.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

#: Environment switch for the whole registry.  Metrics default ON: every
#: instrument sits at per-query granularity, so the steady-state cost is
#: a handful of dict increments per query, not per tuple.
METRICS_ENV = "REPRO_METRICS"

_COUNTER = "c"
_GAUGE = "g"
_HIST = "h"


def _env_enabled() -> bool:
    return os.environ.get(METRICS_ENV, "1").lower() not in (
        "0", "false", "off", "no",
    )


class MetricsSnapshot(Mapping):
    """An immutable point-in-time view of the registry: name → value.

    Histogram instruments expand into ``name.count`` / ``name.sum`` /
    ``name.min`` / ``name.max`` scalar entries, so a snapshot is always
    a flat mapping of dotted names to numbers.
    """

    __slots__ = ("_values", "_kinds")

    def __init__(
        self,
        values: Dict[str, float],
        kinds: Optional[Dict[str, str]] = None,
    ):
        self._values = dict(values)
        self._kinds = dict(kinds) if kinds is not None else {}

    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def kind_of(self, name: str) -> str:
        """``"c"`` (counter), ``"g"`` (gauge) or ``"h"`` (histogram)."""
        return self._kinds.get(name, _COUNTER)

    def since(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``earlier`` and this snapshot.

        Counter-like entries subtract (clamped at zero, so an external
        ``reset`` between snapshots cannot produce negative traffic);
        gauges keep this snapshot's value.  Histogram ``.min``/``.max``
        entries are running extremes, not counters: they appear in the
        diff only when the histogram's ``.count`` moved — a query that
        recorded no samples must not inherit an older run's extremes.
        Names absent from the earlier snapshot count from zero.
        """
        out: Dict[str, float] = {}
        for name, value in self._values.items():
            kind = self._kinds.get(name)
            if kind == _GAUGE:
                out[name] = value
            elif kind == _HIST and name.rsplit(".", 1)[-1] in (
                "min", "max",
            ):
                base = name.rsplit(".", 1)[0]
                moved = self._values.get(
                    f"{base}.count", 0
                ) > earlier._values.get(f"{base}.count", 0)
                if moved:
                    out[name] = value
            else:
                out[name] = max(0.0, value - earlier._values.get(name, 0))
        return MetricsSnapshot(out, self._kinds)

    def nonzero(self) -> "MetricsSnapshot":
        """Only the entries with a non-zero value (rendering filter)."""
        return MetricsSnapshot(
            {k: v for k, v in self._values.items() if v},
            self._kinds,
        )

    def group(self, prefix: str) -> Dict[str, float]:
        """Entries under a dotted prefix, with the prefix stripped."""
        dot = prefix + "."
        return {
            k[len(dot):]: v
            for k, v in self._values.items()
            if k.startswith(dot)
        }

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)


class MetricsRegistry:
    """Counters, gauges and histograms under one dotted namespace."""

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = _env_enabled() if enabled is None else enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        #: name → [count, sum, min, max]
        self._hists: Dict[str, List[float]] = {}
        self._collectors: Dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- direct instruments ----------------------------------------------------

    def inc(self, name: str, delta: float = 1) -> None:
        """Add to a monotonic counter (no-op while disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + delta

    def inc_many(self, values: Mapping[str, float]) -> None:
        """Fold a dict of counter deltas in (one enabled check for all)."""
        if not self.enabled:
            return
        counters = self._counters
        for name, delta in values.items():
            if delta:
                counters[name] = counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram (count/sum/min/max)."""
        if not self.enabled:
            return
        h = self._hists.get(name)
        if h is None:
            self._hists[name] = [1, value, value, value]
        else:
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value

    # -- collectors ------------------------------------------------------------

    def register_collector(
        self, name: str, collect: Callable[[], Mapping[str, float]]
    ) -> None:
        """Attach a pull-time source of counter values.

        ``collect()`` runs at snapshot time and returns ``{dotted name:
        value}``.  Registration is keyed by ``name`` and idempotent —
        re-importing a module replaces its collector instead of
        duplicating it.
        """
        self._collectors[name] = collect

    def unregister_collector(self, name: str) -> None:
        self._collectors.pop(name, None)

    # -- reading ---------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Everything the registry knows right now, collectors included."""
        values: Dict[str, float] = {}
        kinds: Dict[str, str] = {}
        for name, v in self._counters.items():
            values[name] = v
            kinds[name] = _COUNTER
        for name, v in self._gauges.items():
            values[name] = v
            kinds[name] = _GAUGE
        for name, (count, total, lo, hi) in self._hists.items():
            values[f"{name}.count"] = count
            values[f"{name}.sum"] = total
            values[f"{name}.min"] = lo
            values[f"{name}.max"] = hi
            for suffix in ("count", "sum", "min", "max"):
                kinds[f"{name}.{suffix}"] = _HIST
        for collect in self._collectors.values():
            for name, v in collect().items():
                # Collector-owned caches report running totals: treat
                # size-like names as gauges so since() keeps them
                # readable, everything else as counters so they diff.
                values[name] = v
                kinds[name] = (
                    _GAUGE
                    if name.rsplit(".", 1)[-1] in ("entries", "capacity")
                    else _COUNTER
                )
        return MetricsSnapshot(values, kinds)

    def value(self, name: str, default: float = 0.0) -> float:
        """One instrument's current value (direct instruments only)."""
        if name in self._counters:
            return self._counters[name]
        if name in self._gauges:
            return self._gauges[name]
        return default

    def reset(self) -> None:
        """Zero every direct instrument (collector sources are theirs)."""
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()


#: The process-wide registry every subsystem reports into.
REGISTRY = MetricsRegistry()


def set_enabled(on: bool) -> None:
    """Flip the global registry's master switch (tests, benchmarks)."""
    REGISTRY.enabled = on


def enabled() -> bool:
    return REGISTRY.enabled


def snapshot() -> MetricsSnapshot:
    return REGISTRY.snapshot()


def render_metrics(
    snap: MetricsSnapshot,
    indent: str = "",
    skip_zero: bool = True,
) -> List[str]:
    """A snapshot as aligned ``name : value`` lines, sorted by name."""
    shown = snap.nonzero() if skip_zero else snap
    names = list(shown)
    if not names:
        return [f"{indent}(no metrics recorded)"]
    width = max(len(n) for n in names)
    lines = []
    for name in names:
        value = shown[name]
        if value == int(value) and abs(value) < 1e15:
            text = str(int(value))
        else:
            text = f"{value:.6g}"
        lines.append(f"{indent}{name:<{width}} : {text}")
    return lines
