"""Span-based tracing of the query lifecycle.

A query's life is plan → stats/certificate probe → kernel compile →
execute — and, shard-parallel, partition → dispatch → per-worker compute
→ merge.  Each stage becomes a :class:`Span`: a named wall-time interval
with attributes, a unique id, and a parent id that threads the spans
into a tree.  Span context crosses the multiprocess pipe protocol as a
``(trace id, parent span id)`` pair riding on the
:class:`~repro.parallel.workers.ShardTask`; the worker's spans come back
serialized on the :class:`~repro.parallel.workers.ShardResult` and
stitch under the dispatching span, so a 4-worker run renders as one
tree, not five.

Instrumented code never checks a flag per operation: the engine asks
:func:`current_tracer` **once per query** and passes ``None`` downward
when tracing is off; the :func:`span` helper degrades to a shared no-op
context manager whose cost is one global read.  Span ids are
``"<pid hex>.<counter>"`` — collision-free across worker processes
without coordination.

Export formats:

* :func:`write_jsonl` — one JSON object per span, the replayable log;
* :func:`write_chrome_trace` — Chrome trace-event format (``ph: "X"``
  complete events), loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Environment switch: set ``REPRO_TRACE=1`` to trace every query (the
#: CLI's ``--trace`` / ``--analyze`` and the slow-query log force it per
#: query regardless).
TRACE_ENV = "REPRO_TRACE"


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "").lower() in ("1", "true", "on", "yes")


_ENABLED = _env_enabled()

#: Process-wide span id source (ids are ``"<pid hex>.<n>"``).
_SPAN_IDS = itertools.count(1)


def set_enabled(on: bool) -> None:
    """Flip ambient tracing for every subsequent query."""
    global _ENABLED
    _ENABLED = on


def enabled() -> bool:
    return _ENABLED


@dataclass
class Span:
    """One named interval of a query's life."""

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            name=d["name"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            start=d["start"],
            end=d["end"],
            attrs=dict(d.get("attrs") or {}),
            pid=d.get("pid", 0),
        )


class Tracer:
    """Collects one trace: a tree of spans under a shared trace id.

    Single-threaded by design (the engine's control plane is); worker
    processes build their own tracer from the propagated context and
    ship their spans home.  ``finish()``-less exits are safe — spans
    still open when the trace is exported get their parent's end time.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ):
        pid = os.getpid()
        self.pid = pid
        self.trace_id = (
            trace_id
            if trace_id is not None
            else f"{pid:x}-{time.time_ns():x}"
        )
        self._stack: List[Span] = []
        #: Span id adopted as the parent of root-level spans — how a
        #: worker's spans nest under the parent process's dispatch span.
        self.root_parent = parent_id
        self.spans: List[Span] = []

    # -- recording -------------------------------------------------------------

    def _new_id(self) -> str:
        # The counter is process-global, not per-tracer: a worker builds
        # a fresh tracer per shard, and a per-tracer counter would hand
        # every shard from one worker the same id — colliding spans in
        # the adopted tree.  (Forked children inherit the counter's
        # position, but their pid prefix keeps their ids distinct.)
        return f"{self.pid:x}.{next(_SPAN_IDS)}"

    def start(
        self, name: str, parent_id: Optional[str] = None, **attrs
    ) -> Span:
        """Open a span explicitly (prefer :meth:`span` where possible)."""
        if parent_id is None:
            parent_id = (
                self._stack[-1].span_id
                if self._stack
                else self.root_parent
            )
        s = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=parent_id,
            start=time.perf_counter(),
            attrs=attrs,
            pid=self.pid,
        )
        self._stack.append(s)
        self.spans.append(s)
        return s

    def finish(self, span: Span, **attrs) -> None:
        """Close a span (and anything left open beneath it)."""
        if attrs:
            span.attrs.update(attrs)
        now = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            top.end = now
            if top is span:
                break

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        s = self.start(name, **attrs)
        try:
            yield s
        finally:
            self.finish(s)

    def adopt(self, spans: Sequence[Dict[str, Any]]) -> None:
        """Absorb serialized spans from another process's tracer.

        The shipped spans carry their own parent links (the worker's
        root spans already point at the dispatching span id from the
        propagated context), so adoption is a plain extend.
        """
        self.spans.extend(Span.from_dict(d) for d in spans)

    def context(self) -> Tuple[str, Optional[str]]:
        """The ``(trace id, current span id)`` pair to put on the wire."""
        current = self._stack[-1].span_id if self._stack else self.root_parent
        return (self.trace_id, current)

    # -- reading ---------------------------------------------------------------

    def serialized(self) -> List[Dict[str, Any]]:
        """Every span as a pickle/JSON-safe dict (wire + export form)."""
        self._close_open()
        return [s.to_dict() for s in self.spans]

    def _close_open(self) -> None:
        now = time.perf_counter()
        for s in self.spans:
            if s.end == 0.0:
                s.end = now

    def tree(self) -> List["SpanNode"]:
        """The trace as root-level :class:`SpanNode` trees (start order)."""
        self._close_open()
        nodes = {s.span_id: SpanNode(s) for s in self.spans}
        roots: List[SpanNode] = []
        for s in self.spans:
            node = nodes[s.span_id]
            parent = (
                nodes.get(s.parent_id) if s.parent_id is not None else None
            )
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: n.span.start)
        roots.sort(key=lambda n: n.span.start)
        return roots


@dataclass
class SpanNode:
    """A span plus its children — the rendered/asserted tree form."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    def shape(self) -> Tuple:
        """Name-only recursive shape, for parity assertions.

        Children are sorted by name so completion-order jitter (parallel
        shards finish in any order) never changes the shape.
        """
        return (
            self.span.name,
            tuple(sorted(c.shape() for c in self.children)),
        )

    def walk(self) -> Iterator[Tuple[int, Span]]:
        """(depth, span) pairs in depth-first start order."""
        stack: List[Tuple[int, SpanNode]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node.span
            for child in reversed(node.children):
                stack.append((depth + 1, child))


# -- the ambient tracer --------------------------------------------------------

_CURRENT: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The query currently being traced, or ``None`` (the common case)."""
    return _CURRENT


@contextmanager
def use(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install a tracer as ambient for the duration of a query."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    try:
        yield tracer
    finally:
        _CURRENT = previous


class _NullSpan:
    """The shared do-nothing context manager for untraced queries."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span on the ambient tracer, or no-op when untraced.

    This is the deep-instrumentation hook (planner, codegen): call sites
    pay one global read when tracing is off.  Per-query code that holds
    a tracer reference should call ``tracer.span`` directly.
    """
    tracer = _CURRENT
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


# -- export --------------------------------------------------------------------


def write_jsonl(spans: Sequence[Dict[str, Any]], path: str) -> None:
    """One JSON object per span — the appendable raw log."""
    with open(path, "w") as fh:
        for s in spans:
            fh.write(json.dumps(s, sort_keys=True))
            fh.write("\n")


def chrome_trace_events(
    spans: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Spans as Chrome trace-event ``ph: "X"`` complete events.

    ``perf_counter`` timestamps are monotonic within a boot and shared
    by forked workers, so parent and worker spans land on one timeline;
    each process renders as its own ``pid`` row in Perfetto.
    """
    events = []
    for s in spans:
        events.append(
            {
                "name": s["name"],
                "ph": "X",
                "ts": s["start"] * 1e6,
                "dur": max(0.0, s["end"] - s["start"]) * 1e6,
                "pid": s.get("pid", 0),
                "tid": s.get("pid", 0),
                "args": {
                    "span_id": s["span_id"],
                    "parent_id": s.get("parent_id"),
                    **{k: repr(v) for k, v in (s.get("attrs") or {}).items()},
                },
            }
        )
    return events


def write_chrome_trace(
    spans: Sequence[Dict[str, Any]], path: str
) -> None:
    """A Perfetto-loadable trace file (``traceEvents`` envelope)."""
    with open(path, "w") as fh:
        json.dump(
            {"traceEvents": chrome_trace_events(spans),
             "displayTimeUnit": "ms"},
            fh,
        )
        fh.write("\n")


def render_tree(
    roots: Sequence[SpanNode], indent: str = ""
) -> List[str]:
    """The span tree as aligned text lines (slow-query log, ANALYZE)."""
    lines: List[str] = []

    def visit(node: SpanNode, prefix: str, last: bool) -> None:
        s = node.span
        branch = "└─" if last else "├─"
        attrs = ""
        if s.attrs:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(s.attrs.items())
            )
        lines.append(
            f"{indent}{prefix}{branch} {s.name:<18s} "
            f"{s.duration * 1e3:9.3f} ms{attrs}"
        )
        ext = "    " if last else "│   "
        for i, child in enumerate(node.children):
            visit(child, prefix + ext, i == len(node.children) - 1)

    for i, root in enumerate(roots):
        visit(root, "", i == len(roots) - 1)
    return lines
