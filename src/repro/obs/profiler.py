"""Sampling wall-clock profiler: where the main thread's time goes.

A background daemon thread wakes :data:`DEFAULT_HZ` times a second,
reads the main thread's current frame out of
``sys._current_frames()``, and collapses the stack into a
``file:function`` chain.  Each sample is attributed to the **ambient
tracer span** when one is open (``plan``, ``backend[...]``,
``parallel.dispatch``, …), so the aggregate answers the question the
span tree alone cannot: *within* a stage, which frames burned the
time.  Sampling is statistical — the cost is one stack walk per tick
on a thread the GIL schedules like any other — so a disabled profiler
is exactly zero code on the query path, and an enabled one is a few
percent (gated in ``benchmarks/bench_obs.py``).

Exports:

* :meth:`SamplingProfiler.folded` — classic collapsed-stack lines
  (``stage;frame;frame count``), the input format of every flamegraph
  renderer;
* :meth:`SamplingProfiler.speedscope` — a `speedscope
  <https://www.speedscope.app>`_ JSON document, openable directly in a
  browser;
* :meth:`SamplingProfiler.stage_self_seconds` — per-span-stage sampled
  time, which ``repro explain --analyze`` renders next to the measured
  span durations.

Enablement: ``REPRO_PROFILE=1`` (default rate) or ``REPRO_PROFILE=500``
(rate in Hz), or programmatically / via ``--profile`` on the CLI.  The
profiler samples only its own process — worker processes would need
their own instance, and a ``fork`` does not carry the sampler thread —
so its scope is the parent: planning, merging, coordination, serial
backends.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs import tracing as _tracing

#: Environment switch: unset/0/off → disabled; ``1``/``true`` → enabled
#: at :data:`DEFAULT_HZ`; any other integer → that sampling rate in Hz.
PROFILE_ENV = "REPRO_PROFILE"

#: Default sampling rate (ticks per second).
DEFAULT_HZ = 200

#: Stack frames kept per sample, innermost out — deep recursive
#: backends truncate instead of building unbounded tuples.
MAX_DEPTH = 64

#: Stage label for samples taken while no tracer span is open.
UNTRACED = "(untraced)"


def _env_hz() -> int:
    """The configured sampling rate, or 0 when profiling is off."""
    raw = os.environ.get(PROFILE_ENV, "").strip().lower()
    if raw in ("", "0", "false", "off", "no"):
        return 0
    if raw in ("1", "true", "on", "yes"):
        return DEFAULT_HZ
    try:
        hz = int(raw)
    except ValueError:
        return DEFAULT_HZ
    return hz if hz > 0 else 0


class SamplingProfiler:
    """Collapsed-stack sampler over the main thread.

    ``samples`` maps ``(stage, stack)`` — stage being the innermost
    open span's name at sample time, stack a root-first tuple of
    ``file:function`` strings — to the number of ticks observed there.
    """

    def __init__(self, hz: int = DEFAULT_HZ):
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = hz
        self.samples: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self.ticks = 0
        self._target = threading.main_thread().ident
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def clear(self) -> None:
        self.samples = {}
        self.ticks = 0

    # -- the sampler thread ----------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        wait = self._stop.wait
        while not wait(interval):
            self._sample_once()

    def _sample_once(self) -> None:
        frame = sys._current_frames().get(self._target)
        if frame is None:  # pragma: no cover - main thread gone
            return
        stack: List[str] = []
        depth = 0
        while frame is not None and depth < MAX_DEPTH:
            code = frame.f_code
            stack.append(
                f"{os.path.basename(code.co_filename)}:{code.co_name}"
            )
            frame = frame.f_back
            depth += 1
        stack.reverse()
        # The ambient span is read without locking: the tracer mutates
        # its stack from the main thread while we sample from this one,
        # so a torn read is possible and harmless — the sample lands in
        # an adjacent stage.
        stage = UNTRACED
        tracer = _tracing.current_tracer()
        if tracer is not None:
            try:
                span_stack = tracer._stack
                if span_stack:
                    stage = span_stack[-1].name.split("[", 1)[0]
            except (IndexError, AttributeError):
                pass
        key = (stage, tuple(stack))
        self.samples[key] = self.samples.get(key, 0) + 1
        self.ticks += 1

    # -- aggregates ------------------------------------------------------------

    def stage_self_seconds(self) -> Dict[str, float]:
        """Sampled wall seconds per stage (``ticks / hz``)."""
        out: Dict[str, float] = {}
        for (stage, _), count in self.samples.items():
            out[stage] = out.get(stage, 0.0) + count / self.hz
        return out

    def snapshot_samples(
        self,
    ) -> Dict[Tuple[str, Tuple[str, ...]], int]:
        """A copy of the sample table (for before/after windows)."""
        return dict(self.samples)

    # -- exports ---------------------------------------------------------------

    def folded(self) -> List[str]:
        """Collapsed-stack lines: ``stage;frame;...;frame count``."""
        lines = []
        for (stage, stack), count in sorted(self.samples.items()):
            lines.append(";".join((stage,) + stack) + f" {count}")
        return lines

    def speedscope(self, name: str = "repro profile") -> dict:
        """The profile as a speedscope-JSON document (sampled type)."""
        frame_index: Dict[str, int] = {}
        frames: List[dict] = []

        def fid(label: str) -> int:
            i = frame_index.get(label)
            if i is None:
                i = frame_index[label] = len(frames)
                frames.append({"name": label})
            return i

        samples: List[List[int]] = []
        weights: List[float] = []
        for (stage, stack), count in sorted(self.samples.items()):
            samples.append([fid(f) for f in (stage,) + stack])
            weights.append(count / self.hz)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": "repro-profiler",
            "name": name,
        }

    def write_folded(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write("\n".join(self.folded()) + "\n")

    def write_speedscope(self, path: str, name: str = "repro profile"):
        import json

        with open(path, "w") as fh:
            json.dump(self.speedscope(name), fh)


#: The process profiler, when one has been installed.
_PROFILER: Optional[SamplingProfiler] = None

#: Whether the environment has been consulted yet (one getenv, ever,
#: on the query path).
_ENV_CHECKED = False


def active() -> Optional[SamplingProfiler]:
    """The running process profiler, or ``None``."""
    p = _PROFILER
    return p if p is not None and p.running else None


def install(hz: int = DEFAULT_HZ) -> SamplingProfiler:
    """Start (or return) the process-wide profiler."""
    global _PROFILER, _ENV_CHECKED
    _ENV_CHECKED = True
    if _PROFILER is not None and _PROFILER.running:
        return _PROFILER
    _PROFILER = SamplingProfiler(hz=hz)
    _PROFILER.start()
    return _PROFILER


def uninstall() -> Optional[SamplingProfiler]:
    """Stop the process profiler; returns it (samples intact)."""
    global _ENV_CHECKED
    _ENV_CHECKED = False
    p = _PROFILER
    if p is not None:
        p.stop()
    return p


def maybe_start() -> Optional[SamplingProfiler]:
    """Honor ``REPRO_PROFILE`` lazily, at most one getenv per process.

    Called from the executor's query path: after the first call the
    fast path is two global reads, so an unset environment costs
    effectively nothing (bit-identical execution is asserted in
    ``tests/obs/test_profiler.py``).
    """
    global _ENV_CHECKED
    if _ENV_CHECKED:
        return active()
    _ENV_CHECKED = True
    hz = _env_hz()
    if hz <= 0:
        return None
    return install(hz)
