"""The slow-query log: the serving track's first triage tool.

Set ``REPRO_SLOW_QUERY_MS=<budget>`` and every query whose wall time
exceeds the budget dumps a report — the plan line, the full span tree
(arming the slow log forces tracing on for every query, so the tree is
there when a query finally blows the budget), the query's
flight-recorder record with its latency-quantile context (where this
query sat in the process's distribution), and the query's metrics
delta — to stderr, or to the file named by ``REPRO_SLOW_QUERY_LOG``
(appended, so a long-lived process accumulates a triage log).

Appends go through :func:`rotating_append`: once the log would exceed
``REPRO_LOG_MAX_BYTES`` (default :data:`DEFAULT_MAX_BYTES`) it rotates
to ``<path>.1`` first, so an armed budget in a tight loop can never
fill the disk.  The analyze log (:mod:`repro.obs.calibration`) shares
the same helper and knob.

The executor consults :func:`budget_ms` once per query; an unset budget
costs one environment read.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

SLOW_QUERY_MS_ENV = "REPRO_SLOW_QUERY_MS"
SLOW_QUERY_LOG_ENV = "REPRO_SLOW_QUERY_LOG"

#: Size cap for every append-forever observability log (slow-query log,
#: analyze calibration log).  Crossing it rotates ``path`` → ``path.1``
#: (one generation kept) before the append.
LOG_MAX_BYTES_ENV = "REPRO_LOG_MAX_BYTES"
DEFAULT_MAX_BYTES = 10 * 1024 * 1024


def log_max_bytes() -> int:
    raw = os.environ.get(LOG_MAX_BYTES_ENV)
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        n = int(raw)
    except ValueError:
        return DEFAULT_MAX_BYTES
    return n if n > 0 else DEFAULT_MAX_BYTES


def rotating_append(path: str, text: str) -> None:
    """Append ``text`` to ``path``, rotating to ``path.1`` at the cap.

    Rotation happens when the file's current size plus this write
    would cross :func:`log_max_bytes`: the existing file moves to
    ``<path>.1`` (replacing any previous generation) and the append
    starts a fresh file — bounded total footprint, and the most recent
    cap's worth of history always on disk.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    cap = log_max_bytes()
    try:
        size = os.path.getsize(path)
    except OSError:
        size = 0
    if size and size + len(text.encode()) > cap:
        try:
            os.replace(path, path + ".1")
        except OSError:
            pass
    with open(path, "a") as fh:
        fh.write(text)


def budget_ms() -> Optional[float]:
    """The configured slow-query budget, or ``None`` when disarmed.

    Read from the environment on every call — once per query — so a
    serving process can be re-armed without a restart.
    """
    raw = os.environ.get(SLOW_QUERY_MS_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def armed() -> bool:
    return budget_ms() is not None


def render_report(
    description: str,
    elapsed_s: float,
    budget: float,
    tracer=None,
    metrics_delta=None,
    flight=None,
) -> str:
    """The slow-query report text (also what the tests assert on)."""
    lines: List[str] = [
        f"SLOW QUERY ({elapsed_s * 1e3:.1f} ms > budget {budget:g} ms)",
        f"├─ query : {description}",
    ]
    if flight is not None:
        from repro.obs.flight import render_record

        lines.append("├─ flight")
        lines.extend(render_record(flight, indent="│   "))
    if tracer is not None and tracer.spans:
        from repro.obs.tracing import render_tree

        lines.append("├─ spans")
        lines.extend(render_tree(tracer.tree(), indent="│   "))
    if metrics_delta is not None:
        from repro.obs.metrics import render_metrics

        lines.append("└─ metrics")
        lines.extend(render_metrics(metrics_delta, indent="    "))
    else:
        lines.append("└─ metrics : (registry disabled)")
    return "\n".join(lines)


def emit(report: str) -> None:
    """Write a report to the configured sink (file or stderr)."""
    path = os.environ.get(SLOW_QUERY_LOG_ENV)
    if path:
        rotating_append(path, report + "\n\n")
    else:
        print(report, file=sys.stderr)


def maybe_report(
    description: str,
    elapsed_s: float,
    tracer=None,
    metrics_delta=None,
    flight=None,
) -> Optional[str]:
    """Emit a slow-query report if the budget is armed and exceeded."""
    budget = budget_ms()
    if budget is None or elapsed_s * 1e3 <= budget:
        return None
    report = render_report(
        description, elapsed_s, budget, tracer, metrics_delta, flight
    )
    emit(report)
    return report
