"""The slow-query log: the serving track's first triage tool.

Set ``REPRO_SLOW_QUERY_MS=<budget>`` and every query whose wall time
exceeds the budget dumps a report — the plan line, the full span tree
(arming the slow log forces tracing on for every query, so the tree is
there when a query finally blows the budget), and the query's metrics
delta — to stderr, or to the file named by ``REPRO_SLOW_QUERY_LOG``
(appended, so a long-lived process accumulates a triage log).

The executor consults :func:`budget_ms` once per query; an unset budget
costs one environment read.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

SLOW_QUERY_MS_ENV = "REPRO_SLOW_QUERY_MS"
SLOW_QUERY_LOG_ENV = "REPRO_SLOW_QUERY_LOG"


def budget_ms() -> Optional[float]:
    """The configured slow-query budget, or ``None`` when disarmed.

    Read from the environment on every call — once per query — so a
    serving process can be re-armed without a restart.
    """
    raw = os.environ.get(SLOW_QUERY_MS_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def armed() -> bool:
    return budget_ms() is not None


def render_report(
    description: str,
    elapsed_s: float,
    budget: float,
    tracer=None,
    metrics_delta=None,
) -> str:
    """The slow-query report text (also what the tests assert on)."""
    lines: List[str] = [
        f"SLOW QUERY ({elapsed_s * 1e3:.1f} ms > budget {budget:g} ms)",
        f"├─ query : {description}",
    ]
    if tracer is not None and tracer.spans:
        from repro.obs.tracing import render_tree

        lines.append("├─ spans")
        lines.extend(render_tree(tracer.tree(), indent="│   "))
    if metrics_delta is not None:
        from repro.obs.metrics import render_metrics

        lines.append("└─ metrics")
        lines.extend(render_metrics(metrics_delta, indent="    "))
    else:
        lines.append("└─ metrics : (registry disabled)")
    return "\n".join(lines)


def emit(report: str) -> None:
    """Write a report to the configured sink (file or stderr)."""
    path = os.environ.get(SLOW_QUERY_LOG_ENV)
    if path:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(report)
            fh.write("\n\n")
    else:
        print(report, file=sys.stderr)


def maybe_report(
    description: str,
    elapsed_s: float,
    tracer=None,
    metrics_delta=None,
) -> Optional[str]:
    """Emit a slow-query report if the budget is armed and exceeded."""
    budget = budget_ms()
    if budget is None or elapsed_s * 1e3 <= budget:
        return None
    report = render_report(
        description, elapsed_s, budget, tracer, metrics_delta
    )
    emit(report)
    return report
