"""Observability: the metrics registry, span tracing, and ANALYZE loop.

Submodules (import order matters — these four are stdlib-only, so every
engine layer can instrument itself without import cycles):

* :mod:`repro.obs.metrics` — the process-wide :data:`~repro.obs.metrics.REGISTRY`
  of counters/gauges/histograms under dotted names, with snapshot/diff.
* :mod:`repro.obs.tracing` — span trees over the query lifecycle,
  propagated across the multiprocess pipe protocol; JSONL and Chrome
  trace-event export.
* :mod:`repro.obs.calibration` — the ANALYZE log and the cost-model
  refit behind ``repro calibrate``.
* :mod:`repro.obs.slowlog` — the ``REPRO_SLOW_QUERY_MS`` triage dump.

:mod:`repro.obs.analyze` (EXPLAIN ANALYZE orchestration) imports the
engine and is therefore *not* imported here — reach it explicitly.
"""

from repro.obs import calibration, metrics, slowlog, tracing
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    render_metrics,
)
from repro.obs.tracing import (
    Span,
    SpanNode,
    Tracer,
    chrome_trace_events,
    current_tracer,
    render_tree,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanNode",
    "Tracer",
    "calibration",
    "chrome_trace_events",
    "current_tracer",
    "metrics",
    "render_metrics",
    "render_tree",
    "slowlog",
    "tracing",
    "write_chrome_trace",
    "write_jsonl",
]
