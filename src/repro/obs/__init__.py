"""Observability: metrics, tracing, profiling, exposition, ANALYZE loop.

Submodules (import order matters — all of these are stdlib-only, so
every engine layer can instrument itself without import cycles):

* :mod:`repro.obs.metrics` — the process-wide :data:`~repro.obs.metrics.REGISTRY`
  of counters/gauges/quantile histograms under dotted names, with
  snapshot/diff and the cross-process wire-delta helpers.
* :mod:`repro.obs.tracing` — span trees over the query lifecycle,
  propagated across the multiprocess pipe protocol; JSONL and Chrome
  trace-event export.
* :mod:`repro.obs.profiler` — the sampling wall-clock profiler
  (``REPRO_PROFILE``), with folded-stack / speedscope flamegraph
  export and per-span-stage self-time.
* :mod:`repro.obs.export` — OpenMetrics text exposition and the
  ``repro metrics --serve`` scrape endpoint.
* :mod:`repro.obs.flight` — the bounded per-query flight-recorder
  ring, dumped on slow queries, fault runs and ``SIGUSR2``.
* :mod:`repro.obs.calibration` — the ANALYZE log and the cost-model
  refit behind ``repro calibrate``.
* :mod:`repro.obs.slowlog` — the ``REPRO_SLOW_QUERY_MS`` triage dump
  (and the shared rotating-append helper behind ``REPRO_LOG_MAX_BYTES``).

:mod:`repro.obs.analyze` (EXPLAIN ANALYZE orchestration) imports the
engine and is therefore *not* imported here — reach it explicitly.
"""

from repro.obs import (
    calibration,
    export,
    flight,
    metrics,
    profiler,
    slowlog,
    tracing,
)
from repro.obs.export import render_openmetrics, start_metrics_server
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    QuantileHistogram,
    render_metrics,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.tracing import (
    Span,
    SpanNode,
    Tracer,
    chrome_trace_events,
    current_tracer,
    render_tree,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "REGISTRY",
    "FlightRecord",
    "FlightRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "QuantileHistogram",
    "SamplingProfiler",
    "Span",
    "SpanNode",
    "Tracer",
    "calibration",
    "chrome_trace_events",
    "current_tracer",
    "export",
    "flight",
    "metrics",
    "profiler",
    "render_metrics",
    "render_openmetrics",
    "render_tree",
    "slowlog",
    "start_metrics_server",
    "tracing",
    "write_chrome_trace",
    "write_jsonl",
]
