"""OpenMetrics exposition: the registry in a format a scraper ingests.

:func:`render_openmetrics` turns any :class:`~repro.obs.metrics.
MetricsSnapshot` into OpenMetrics text — counters as ``_total``
samples, gauges as-is, quantile histograms as cumulative
``_bucket{le="..."}`` series with ``_count``/``_sum`` (the log-bucket
boundaries are exposed exactly, so PromQL ``histogram_quantile`` agrees
with the in-process estimates up to the same bounded error) — ending
with the mandatory ``# EOF``.

:func:`start_metrics_server` serves it live: a stdlib
``ThreadingHTTPServer`` on a daemon thread, ``GET /metrics`` for the
exposition and ``GET /flight`` for the flight-recorder ring as JSON
lines.  One snapshot per scrape; no state beyond the registry itself.
Wire it up with ``repro metrics --serve PORT``.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from repro.obs.metrics import (
    MetricsSnapshot,
    QuantileHistogram,
    REGISTRY,
    _GAUGE,
)

#: Every exposed name is prefixed — a scrape config sees one namespace.
PREFIX = "repro_"

_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def _name(dotted: str) -> str:
    return PREFIX + _SANITIZE.sub("_", dotted)


def _num(v: float) -> str:
    if v != v or v in (float("inf"), float("-inf")):
        return "NaN" if v != v else ("+Inf" if v > 0 else "-Inf")
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.9g}"


def _hist_lines(name: str, h: QuantileHistogram) -> List[str]:
    """One histogram as cumulative bucket series plus count/sum and
    the running extremes (as companion gauges)."""
    lines = [f"# TYPE {name} histogram"]
    cum = h.zero
    if h.zero:
        lines.append(f'{name}_bucket{{le="0"}} {cum}')
    for index, count in h.bucket_items():
        cum += count
        upper = QuantileHistogram.bucket_upper(index)
        lines.append(f'{name}_bucket{{le="{_num(upper)}"}} {cum}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {h.count}')
    lines.append(f"{name}_count {h.count}")
    lines.append(f"{name}_sum {_num(h.total)}")
    if h.count > 0:
        lines.append(f"# TYPE {name}_min gauge")
        lines.append(f"{name}_min {_num(h.lo)}")
        lines.append(f"# TYPE {name}_max gauge")
        lines.append(f"{name}_max {_num(h.hi)}")
    return lines


def render_openmetrics(snap: Optional[MetricsSnapshot] = None) -> str:
    """An OpenMetrics text document of a snapshot (default: live)."""
    if snap is None:
        snap = REGISTRY.snapshot()
    hist_names = {name for name, _ in snap.hist_items()}
    counters = []
    gauges = []
    for flat in snap:
        base, _, suffix = flat.rpartition(".")
        if base in hist_names and suffix in ("count", "sum", "min", "max"):
            continue  # owned by the histogram series
        if snap.kind_of(flat) == _GAUGE:
            gauges.append(flat)
        else:
            counters.append(flat)
    lines: List[str] = []
    for flat in counters:
        name = _name(flat)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_num(snap[flat])}")
    for flat in gauges:
        name = _name(flat)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_num(snap[flat])}")
    for dotted, h in snap.hist_items():
        lines.extend(_hist_lines(_name(dotted), h))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/metrics"
        if path == "/metrics":
            body = render_openmetrics().encode()
            ctype = CONTENT_TYPE
        elif path == "/flight":
            import io

            from repro.obs.flight import RECORDER

            buf = io.StringIO()
            RECORDER.dump(buf)
            body = buf.getvalue().encode()
            ctype = "application/x-ndjson; charset=utf-8"
        else:
            self.send_error(404)
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence per-request stderr noise
        pass


def start_metrics_server(
    port: int = 0, host: str = "127.0.0.1"
) -> ThreadingHTTPServer:
    """Serve ``/metrics`` (and ``/flight``) on a daemon thread.

    Returns the live server — ``server.server_address[1]`` is the bound
    port (pass ``port=0`` for an ephemeral one), ``server.shutdown()``
    stops it.  The thread is a daemon: a process exit never hangs on
    the scrape endpoint.
    """
    server = ThreadingHTTPServer((host, port), _MetricsHandler)
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-metrics-server",
        daemon=True,
    )
    thread.start()
    return server
